module Fabric = Blink_topology.Fabric
module Subtree = Blink_collectives.Subtree
module Threephase = Blink_collectives.Threephase
module Codegen = Blink_collectives.Codegen

type t = {
  fabric : Fabric.t;
  plans : Threephase.plan array;
  n_partitions : int;
}

(* A directed ring's path tree towards the server's leader (first local
   rank), as a subset tree over global ranks. *)
let ring_plan server ~gpus ~rank_offset =
  let k = Array.length gpus in
  let global i = rank_offset + i in
  let ranks = List.init k global in
  if k = 1 then
    {
      Threephase.trees = [ Subtree.of_edges ~root:(global 0) [] ];
      ranks;
      cls = Fabric.Nv;
    }
  else begin
    let channels = Ring.nccl_channels server ~gpus in
    let trees =
      List.map
        (fun ring ->
          let rec path_edges = function
            | a :: (b :: _ as rest) -> (global a, global b) :: path_edges rest
            | [ _ ] | [] -> []
          in
          Subtree.of_edges ~root:(global (List.hd ring)) (path_edges ring))
        channels.Ring.rings
    in
    { Threephase.trees; ranks; cls = channels.Ring.cls }
  end

let create ?net_bw servers =
  if servers = [] then invalid_arg "Hierarchical.create: no servers";
  let fabric =
    Fabric.of_cluster ?net_bw (List.map fst servers)
      ~allocs:(List.map snd servers)
  in
  let _, plans =
    List.fold_left
      (fun (offset, acc) (server, gpus) ->
        let plan = ring_plan server ~gpus ~rank_offset:offset in
        (offset + Array.length gpus, plan :: acc))
      (0, []) servers
  in
  let plans = Array.of_list (List.rev plans) in
  let max_trees =
    Array.fold_left
      (fun acc plan -> max acc (List.length plan.Threephase.trees))
      1 plans
  in
  { fabric; plans; n_partitions = max_trees * Array.length plans }

let fabric t = t.fabric
let local_cls t s = t.plans.(s).Threephase.cls

let all_reduce ?chunk_elems ?stream_reuse t ~elems =
  let spec = Codegen.spec ?chunk_elems ?stream_reuse t.fabric in
  Threephase.all_reduce spec ~n_partitions:t.n_partitions ~plans:t.plans ~elems

let time ?policy t prog =
  Blink_sim.Engine.run ?policy ~resources:(Fabric.resources t.fabric) prog
