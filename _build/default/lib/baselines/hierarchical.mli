(** Horovod/NCCL-style hierarchical multi-server AllReduce: the paper's
    multi-machine baseline (section 5.4, figure 22a).

    Same three phases as Blink's protocol, but the local phases run over
    NCCL's ring channels (path trees towards a fixed per-server leader)
    instead of packed spanning trees — which is precisely where Blink's
    gains on fragmented allocations come from. *)

type t

val create :
  ?net_bw:float -> (Blink_topology.Server.t * int array) list -> t
(** Build channels per server: NVLink rings when the local allocation
    admits them, PCIe fallback otherwise. *)

val fabric : t -> Blink_topology.Fabric.t

val local_cls : t -> int -> Blink_topology.Fabric.link_class
(** Which link class server [i]'s local rings use. *)

val all_reduce :
  ?chunk_elems:int -> ?stream_reuse:bool -> t -> elems:int ->
  Blink_sim.Program.t * Blink_collectives.Codegen.layout
(** When some server fell back to PCIe, the whole job's local phases run
    at the PCIe class for that server (mirroring NCCL's behaviour). *)

val time :
  ?policy:Blink_sim.Engine.policy -> t -> Blink_sim.Program.t ->
  Blink_sim.Engine.result
