module Tree = Blink_collectives.Tree
module Codegen = Blink_collectives.Codegen

(* NCCL's in-order binary tree over 1-indexed ranks 1..n: rank v sits at
   height ctz(v); its parent is v +/- 2^ctz(v) (direction alternating with
   the next bit), falling back to the other side at the boundary. Leaves
   are exactly the odd 1-indexed ranks, i.e. even 0-indexed ranks. *)
let bst_tree n =
  let ctz v =
    let rec go v h = if v land 1 = 1 then h else go (v lsr 1) (h + 1) in
    go v 0
  in
  let parent v =
    let h = ctz v in
    let step = 1 lsl h in
    let up = if (v lsr (h + 1)) land 1 = 0 then v + step else v - step in
    let down = if up > v then v - step else v + step in
    if up >= 1 && up <= n then Some up
    else if down >= 1 && down <= n then Some down
    else None
  in
  let edges = ref [] in
  let root = ref (-1) in
  for v = 1 to n do
    match parent v with
    | Some p -> edges := (p - 1, v - 1) :: !edges
    | None -> root := v - 1
  done;
  (Tree.of_edges ~n_ranks:n ~root:!root !edges, !root)

let trees ~n_ranks =
  if n_ranks < 1 then invalid_arg "Dbtree.trees: empty";
  if n_ranks = 1 then [ { Tree.tree = Tree.of_edges ~n_ranks:1 ~root:0 []; share = 1. } ]
  else begin
    let t1, _root = bst_tree n_ranks in
    (* Second tree: same shape, ranks rotated by one — a rank that is a
       leaf of t1 (even position) becomes interior in t2. *)
    let rotate v = (v + 1) mod n_ranks in
    let edges2 =
      Array.to_list t1.Tree.parent
      |> List.mapi (fun child parent -> (parent, child))
      |> List.filter_map (fun (p, c) ->
             if p < 0 then None else Some (rotate p, rotate c))
    in
    let t2 = Tree.of_edges ~n_ranks ~root:(rotate t1.Tree.root) edges2 in
    [ { Tree.tree = t1; share = 0.5 }; { Tree.tree = t2; share = 0.5 } ]
  end

let all_reduce spec ~elems =
  let k = Blink_topology.Fabric.n_ranks spec.Codegen.fabric in
  Codegen.all_reduce spec ~elems ~trees:(trees ~n_ranks:k)
