(** NCCL 2.4 double binary trees (the paper's DGX-2 baseline for small
    AllReduce sizes).

    Two binary trees each carry half the data; every rank is a leaf in one
    tree and an interior node in the other, so per-rank send/receive load
    is balanced. Reduce runs up each tree, broadcast back down — exactly
    {!Blink_collectives.Codegen.all_reduce} over the two trees. *)

val trees : n_ranks:int -> Blink_collectives.Tree.weighted list
(** The two half-share trees. For [n_ranks = 1], a single trivial tree.
    Requires [n_ranks >= 1]. *)

val all_reduce :
  Blink_collectives.Codegen.spec ->
  elems:int ->
  Blink_sim.Program.t * Blink_collectives.Codegen.layout
(** Double-binary-tree AllReduce over the spec's fabric. *)
