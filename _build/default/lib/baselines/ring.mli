(** NCCL-style ring collectives: the paper's baseline.

    NCCL builds channels out of directed rings over the allocated GPUs. It
    only rings over NVLink; when the allocation's NVLink graph admits no
    Hamiltonian cycle it falls back to PCIe entirely (paper section 1,
    figure 2b). Every packed undirected cycle yields two directed rings
    (one per link direction). *)

type channels = {
  rings : int list list;  (** directed rings, as rank sequences *)
  cls : Blink_topology.Fabric.link_class;  (** [Nv], or [Pcie] on fallback *)
}

val nccl_channels : Blink_topology.Server.t -> gpus:int array -> channels
(** Channel construction for an allocation: greedy NVLink cycle packing
    with both directions of every cycle, else the PCIe fallback ring
    (ranks in id order, both directions). Single-GPU allocations get one
    trivial ring. *)

val nvswitch_channels : ?per_direction:int -> n_ranks:int -> unit -> channels
(** NCCL's ring channels on an NVSwitch machine: [per_direction] (default
    2) identical id-order rings in each direction, occupying that many of
    each GPU's switch lanes. *)

val ring_tree : root:int -> int list -> Blink_collectives.Tree.t
(** The path tree a directed ring induces for one-to-many traffic from
    [root]: root, then successive ring elements. *)

val broadcast :
  Blink_collectives.Codegen.spec ->
  root:int -> elems:int -> channels:channels ->
  Blink_sim.Program.t * Blink_collectives.Codegen.layout
(** Pipelined ring broadcast: data split evenly over the rings, each ring
    forwarding chunks along its path from the root. The spec's link class
    is overridden by the channels' class. *)

val reduce :
  Blink_collectives.Codegen.spec ->
  root:int -> elems:int -> channels:channels ->
  Blink_sim.Program.t * Blink_collectives.Codegen.layout

val gather :
  Blink_collectives.Codegen.spec ->
  root:int -> elems:int -> channels:channels ->
  Blink_sim.Program.t * Blink_collectives.Codegen.layout

val all_reduce :
  Blink_collectives.Codegen.spec ->
  elems:int -> channels:channels ->
  Blink_sim.Program.t * Blink_collectives.Codegen.layout
(** Bandwidth-optimal ring AllReduce: reduce-scatter then all-gather, each
    ring working on its share of the buffer, 2(k-1) pipelined steps. *)

val n_rings : channels -> int
