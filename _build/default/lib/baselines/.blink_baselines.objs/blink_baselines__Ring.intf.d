lib/baselines/ring.mli: Blink_collectives Blink_sim Blink_topology
