lib/baselines/hierarchical.ml: Array Blink_collectives Blink_sim Blink_topology List Ring
