lib/baselines/hierarchical.mli: Blink_collectives Blink_sim Blink_topology
