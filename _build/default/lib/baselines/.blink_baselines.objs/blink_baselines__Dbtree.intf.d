lib/baselines/dbtree.mli: Blink_collectives Blink_sim
