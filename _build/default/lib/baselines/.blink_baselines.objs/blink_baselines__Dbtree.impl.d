lib/baselines/dbtree.ml: Array Blink_collectives Blink_topology List
