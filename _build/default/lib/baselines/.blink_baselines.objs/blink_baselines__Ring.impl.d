lib/baselines/ring.ml: Array Blink_collectives Blink_graph Blink_sim Blink_topology Float Fun List Printf
