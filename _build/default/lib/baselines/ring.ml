module Program = Blink_sim.Program
module Fabric = Blink_topology.Fabric
module Server = Blink_topology.Server
module Tree = Blink_collectives.Tree
module Codegen = Blink_collectives.Codegen
module Emit = Blink_collectives.Emit

type channels = { rings : int list list; cls : Fabric.link_class }

let reverse_ring = function
  | [] -> []
  | first :: rest -> first :: List.rev rest

let nccl_channels server ~gpus =
  let k = Array.length gpus in
  if k = 1 then { rings = [ [ 0 ] ]; cls = Fabric.Nv }
  else begin
    let cap i j = Server.pair_capacity server gpus.(i) gpus.(j) in
    let cycles = Blink_graph.Hamiltonian.pack_cycles ~n:k ~cap in
    match cycles with
    | [] ->
        (* No NVLink ring exists: NCCL drops to PCIe for the whole job. *)
        let base = List.init k Fun.id in
        { rings = [ base; reverse_ring base ]; cls = Fabric.Pcie }
    | _ when k = 2 ->
        (* Each packed cycle already uses both directions of one link. *)
        { rings = cycles; cls = Fabric.Nv }
    | _ ->
        {
          rings = List.concat_map (fun c -> [ c; reverse_ring c ]) cycles;
          cls = Fabric.Nv;
        }
  end

let n_rings c = List.length c.rings

let nvswitch_channels ?(per_direction = 2) ~n_ranks () =
  if n_ranks < 2 then { rings = [ [ 0 ] ]; cls = Fabric.Nv }
  else begin
    let base = List.init n_ranks Fun.id in
    let both = [ base; reverse_ring base ] in
    { rings = List.concat (List.init per_direction (fun _ -> both)); cls = Fabric.Nv }
  end

(* Rotate the ring so it starts at [root], then read it as a path tree. *)
let ring_tree ~root ring =
  let k = List.length ring in
  if k = 1 then Tree.of_edges ~n_ranks:1 ~root:0 []
  else begin
    let arr = Array.of_list ring in
    let start =
      match Array.find_index (fun v -> v = root) arr with
      | Some i -> i
      | None -> invalid_arg "Ring.ring_tree: root not on ring"
    in
    let seq = List.init k (fun i -> arr.((start + i) mod k)) in
    let rec edges = function
      | a :: (b :: _ as rest) -> (a, b) :: edges rest
      | [ _ ] | [] -> []
    in
    Tree.of_edges ~n_ranks:k ~root (edges seq)
  end

let path_trees ~root channels =
  let share = 1. /. Float.of_int (List.length channels.rings) in
  List.map (fun ring -> { Tree.tree = ring_tree ~root ring; share }) channels.rings

let with_cls spec channels = { spec with Codegen.cls = channels.cls }

let broadcast spec ~root ~elems ~channels =
  Codegen.broadcast (with_cls spec channels) ~root ~elems
    ~trees:(path_trees ~root channels)

let reduce spec ~root ~elems ~channels =
  Codegen.reduce (with_cls spec channels) ~root ~elems
    ~trees:(path_trees ~root channels)

let gather spec ~root ~elems ~channels =
  Codegen.gather (with_cls spec channels) ~root ~elems
    ~trees:(path_trees ~root channels)

(* Ring AllReduce: reduce-scatter then all-gather over each ring's share of
   the buffer. The ring's region is cut into k segments; at reduce-scatter
   step t, position i sends segment (i - t) mod k to position i + 1, which
   accumulates. After k-1 steps position i owns the full sum of segment
   (i + 1) mod k, and k-1 all-gather steps circulate the sums. *)
let all_reduce spec ~elems ~channels =
  let spec = with_cls spec channels in
  let ctx =
    Emit.create ~fabric:spec.Codegen.fabric ~elem_bytes:spec.Codegen.elem_bytes
      ~staging_elems:elems ()
  in
  let data = Codegen.declare_data ctx ~elems in
  let ring_share = 1. /. Float.of_int (List.length channels.rings) in
  List.iteri
    (fun ri ring ->
      let order = Array.of_list ring in
      let len_ring = Array.length order in
      if len_ring >= 2 then begin
        (* This ring's contiguous region of the buffer. *)
        let roff = int_of_float (Float.round (ring_share *. Float.of_int (ri * elems))) in
        let rstop =
          int_of_float (Float.round (ring_share *. Float.of_int ((ri + 1) * elems)))
        in
        let rlen = rstop - roff in
        (* Segment boundaries within the region. *)
        let seg_bound j = roff + (rlen * j / len_ring) in
        let seg j =
          let o = seg_bound j in
          (o, seg_bound (j + 1) - o)
        in
        let hops =
          Array.init len_ring (fun i ->
              let src = order.(i) and dst = order.((i + 1) mod len_ring) in
              match
                Emit.streams_for ctx ~cls:spec.Codegen.cls ~src ~dst ~tree:ri
                  ~flow:i ~reuse:spec.Codegen.stream_reuse
              with
              | Some h -> h
              | None ->
                  invalid_arg
                    (Printf.sprintf "Ring.all_reduce: no %s path %d -> %d"
                       (match spec.Codegen.cls with
                       | Fabric.Nv -> "nvlink"
                       | Fabric.Pcie -> "pcie"
                       | Fabric.Net -> "network")
                       src dst))
        in
        (* possession.(i).(j) = ops after which position i holds its current
           value of segment j, per chunk. *)
        let possession =
          Array.init len_ring (fun _ -> Array.make len_ring [||])
        in
        let chunk_list j =
          let o, l = seg j in
          Array.of_list (Codegen.split_chunks ~chunk:spec.Codegen.chunk_elems ~off:o ~len:l)
        in
        let chunks = Array.init len_ring chunk_list in
        for i = 0 to len_ring - 1 do
          for j = 0 to len_ring - 1 do
            possession.(i).(j) <- Array.map (fun _ -> []) chunks.(j)
          done
        done;
        let send_step ~i ~j ~reduce_phase =
          let src = order.(i) and dst = order.((i + 1) mod len_ring) in
          Array.iteri
            (fun ci (off, len) ->
              if len > 0 then begin
                let src_ref =
                  { Program.node = src; buf = data.(src); off; len }
                in
                let dst_ref =
                  { Program.node = dst; buf = data.(dst); off; len }
                in
                let op =
                  Emit.send ctx ~hops:hops.(i) ~src:src_ref ~dst:dst_ref
                    ~reduce:reduce_phase ~deps:possession.(i).(j).(ci)
                in
                possession.((i + 1) mod len_ring).(j).(ci) <- [ op ]
              end)
            chunks.(j)
        in
        for t = 0 to len_ring - 2 do
          for i = 0 to len_ring - 1 do
            send_step ~i ~j:(((i - t) mod len_ring + len_ring) mod len_ring)
              ~reduce_phase:true
          done
        done;
        for t = 0 to len_ring - 2 do
          for i = 0 to len_ring - 1 do
            send_step ~i
              ~j:(((i + 1 - t) mod len_ring + len_ring) mod len_ring)
              ~reduce_phase:false
          done
        done
      end)
    channels.rings;
  (Emit.program ctx, { Codegen.data; output = None })
