(* Benchmark harness: `dune exec bench/main.exe` regenerates every figure of
   the paper's evaluation (see EXPERIMENTS.md for paper-vs-measured) and
   finishes with Bechamel micro-benchmarks of the planning and simulation
   hot paths. `dune exec bench/main.exe -- fig15` runs a single target;
   `-- list` enumerates them. *)

module Server = Blink_topology.Server
module Blink = Blink_core.Blink
module Treegen = Blink_core.Treegen

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: planner and simulator costs. *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  Util.heading "Bechamel: planner / simulator hot paths (ns per run)";
  let gpus8 = Array.init 8 Fun.id in
  let graph = Server.nvlink_digraph Server.dgx1v ~gpus:gpus8 in
  let handle = Blink.create Server.dgx1v ~gpus:gpus8 in
  let elems = 25_000_000 in
  let prog, _ = Blink.all_reduce ~chunk_elems:1_048_576 handle ~elems in
  let tests =
    [
      Test.make ~name:"maxflow-rate"
        (Staged.stage (fun () -> ignore (Treegen.best_root graph)));
      Test.make ~name:"mwu-pack"
        (Staged.stage (fun () -> ignore (Treegen.pack ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"plan-with-ilp"
        (Staged.stage (fun () -> ignore (Treegen.plan ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"plan-undirected"
        (Staged.stage (fun () ->
             ignore (Treegen.plan_undirected ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"codegen-allreduce-100MB"
        (Staged.stage (fun () ->
             ignore (Blink.all_reduce ~chunk_elems:1_048_576 handle ~elems)));
      Test.make ~name:"engine-run-100MB"
        (Staged.stage (fun () -> ignore (Blink.time handle prog)));
      Test.make ~name:"ring-channel-search"
        (Staged.stage (fun () ->
             ignore (Blink_baselines.Ring.nccl_channels Server.dgx1v ~gpus:gpus8)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      Figures.all_figures ();
      bechamel_suite ();
      print_newline ()
  | _ :: args ->
      List.iter
        (fun arg ->
          match arg with
          | "list" ->
              List.iter (fun (name, _) -> print_endline name) Figures.registry;
              print_endline "bechamel"
          | "all" ->
              Figures.all_figures ();
              bechamel_suite ()
          | "bechamel" -> bechamel_suite ()
          | name -> (
              match List.assoc_opt name Figures.registry with
              | Some f -> f ()
              | None ->
                  Printf.eprintf
                    "unknown target %S (use `list` to enumerate)\n" name;
                  exit 1))
        args
  | [] -> assert false
