bench/main.ml: Analyze Array Bechamel Benchmark Blink_baselines Blink_core Blink_topology Figures Fun Hashtbl Instance List Measure Printf Staged Sys Test Time Toolkit Util
