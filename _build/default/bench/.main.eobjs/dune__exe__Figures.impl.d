bench/figures.ml: Array Blink_baselines Blink_cluster Blink_collectives Blink_core Blink_dnn Blink_graph Blink_sim Blink_topology Float Fun List Printf String Util
