bench/util.ml: Array Blink_baselines Blink_collectives Blink_core Blink_dnn Blink_sim Blink_topology Float List Printf
