bench/main.mli:
