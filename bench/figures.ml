(* One function per figure of the paper's evaluation; each prints the rows
   or series the paper plots. EXPERIMENTS.md records paper-vs-measured. *)

open Util
module Server = Blink_topology.Server
module Fabric = Blink_topology.Fabric
module Alloc = Blink_topology.Alloc
module Micro = Blink_collectives.Micro
module Codegen = Blink_collectives.Codegen
module Blink = Blink_core.Blink
module Treegen = Blink_core.Treegen
module Hybrid = Blink_core.Hybrid
module Multiserver = Blink_core.Multiserver
module Chunking = Blink_core.Chunking
module Ring = Blink_baselines.Ring
module Dbtree = Blink_baselines.Dbtree
module Hierarchical = Blink_baselines.Hierarchical
module Models = Blink_dnn.Models
module Training = Blink_dnn.Training
module Scheduler = Blink_cluster.Scheduler
module Pool = Blink_parallel.Pool
module E = Blink_sim.Engine

(* Config sweeps measure each allocation independently (fresh handle,
   pure simulation), so they fan out over the shared domain pool;
   [parallel_map] returns rows in submission order, so the printed
   output is identical to the sequential sweep. *)
let pool_map f xs = Pool.parallel_map (Pool.default ()) f xs

(* ------------------------------------------------------------------ *)

let fig2 () =
  heading "Figure 2: Broadcast on 3 GPUs of a DGX-1 (NCCL vs Blink), 500 MB";
  let cases =
    [ ("(a) fully connected 0,1,3", [| 0; 1; 3 |]);
      ("(b) partial (no 1-4 NVLink) 0,1,4", [| 0; 1; 4 |]) ]
  in
  List.iter
    (fun (label, gpus) ->
      let handle = Blink.create Server.dgx1p ~gpus in
      let blink = blink_broadcast handle in
      let nccl = nccl_broadcast Server.dgx1p ~gpus (Blink.fabric handle) in
      row "%-36s NCCL %6.1f GB/s   Blink %6.1f GB/s   (%.1fx)\n" label nccl
        blink (blink /. nccl))
    cases

let fig3 () =
  heading "Figure 3: GPUs allocated per server across 40,000 multi-GPU jobs";
  let jobs = Scheduler.generate_trace ~n_jobs:40_000 () in
  let stats = Scheduler.simulate ~servers:64 jobs in
  row "%d multi-GPU jobs placed, %d split across servers, %d rejected\n"
    stats.Scheduler.multi_gpu_jobs stats.Scheduler.fragmented_jobs
    stats.Scheduler.rejected;
  for g = 1 to 8 do
    let f = Scheduler.fraction stats g in
    row "  %d GPU(s)/server: %5.1f%%  %s\n" g (100. *. f)
      (String.make (int_of_float (f *. 120.)) '#')
  done

let overheads server gpu_gen =
  (* Per GPU count: (best, worst) NCCL communication overhead over the
     unique connected configurations, per model. *)
  List.map
    (fun model ->
      let per_count =
        List.map
          (fun n ->
            let configs = Alloc.unique_configs server ~sizes:[ n ] in
            let ovs =
              List.map
                (fun cfg ->
                  let gpus = Array.of_list cfg in
                  let fabric = Fabric.of_server server ~gpus in
                  let backend = nccl_backend server ~gpus fabric in
                  Training.overhead_percent
                    (Training.iteration ~gpu_gen model backend))
                configs
            in
            (n, List.fold_left Float.min infinity ovs,
             List.fold_left Float.max neg_infinity ovs))
          [ 3; 4; 5; 6; 7; 8 ]
      in
      (model, per_count))
    Models.all

let fig5 () =
  heading "Figure 5: NCCL communication overhead %% (best-worst over configs)";
  List.iter
    (fun (server, gen, label) ->
      row "--- %s ---\n" label;
      row "%-10s %s\n" "model"
        (String.concat "  " (List.map (fun n -> Printf.sprintf "   %dGPU    " n) [ 3; 4; 5; 6; 7; 8 ]));
      List.iter
        (fun (model, per_count) ->
          row "%-10s %s\n" model.Models.name
            (String.concat "  "
               (List.map
                  (fun (_, best, worst) -> Printf.sprintf "%4.1f-%4.1f%%" best worst)
                  per_count)))
        (overheads server gen))
    [ (Server.dgx1p, `P100, "DGX-1P"); (Server.dgx1v, `V100, "DGX-1V") ]

let fig7 () =
  heading "Figure 7 / 24: depth tests over DGX-1V chains (GB/s)";
  let sizes = [ 10.; 50.; 100.; 500.; 1000. ] in
  row "%-22s %s\n" "pattern/gpus"
    (String.concat " " (List.map (fun s -> Printf.sprintf "%7.0fMB" s) sizes));
  List.iter
    (fun (name, f) ->
      List.iter
        (fun n ->
          row "%-22s %s\n"
            (Printf.sprintf "%s %dGPU" name n)
            (String.concat " "
               (List.map (fun s -> Printf.sprintf "%9.1f" (f ~n_gpus:n s)) sizes)))
        [ 3; 5; 8 ])
    [ ("forward", fun ~n_gpus mb -> Micro.chain_forward ~n_gpus mb);
      ("reduce+forward", fun ~n_gpus mb -> Micro.chain_reduce_forward ~n_gpus mb);
      ("reduce-broadcast", fun ~n_gpus mb -> Micro.chain_reduce_broadcast ~n_gpus mb) ]

let fig8 () =
  heading "Figure 8: MIMO / MCA multi-transfer throughput (GB/s)";
  let sizes = [ 1.; 10.; 100.; 500.; 1000. ] in
  row "%-6s %s\n" "test"
    (String.concat " " (List.map (fun s -> Printf.sprintf "%7.0fMB" s) sizes));
  row "%-6s %s\n" "MIMO"
    (String.concat " " (List.map (fun s -> Printf.sprintf "%9.1f" (Micro.mimo s)) sizes));
  row "%-6s %s\n" "MCA"
    (String.concat " " (List.map (fun s -> Printf.sprintf "%9.1f" (Micro.mca s)) sizes))

let fig26 () =
  heading "Figures 25-26: breadth tests, fan-in/fan-out on DGX-1V (GB/s)";
  let sizes = [ 10.; 50.; 100.; 500. ] in
  row "%-26s %s\n" "pattern/degree"
    (String.concat " " (List.map (fun s -> Printf.sprintf "%7.0fMB" s) sizes));
  List.iter
    (fun (name, f) ->
      List.iter
        (fun degree ->
          row "%-26s %s\n"
            (Printf.sprintf "%s fan=%d" name degree)
            (String.concat " "
               (List.map (fun s -> Printf.sprintf "%9.1f" (f ~degree s)) sizes)))
        [ 1; 2; 3 ])
    [ ("fan-in forward", fun ~degree mb -> Micro.fan_in_forward ~degree mb);
      ("fan-in reduce+forward", fun ~degree mb -> Micro.fan_in_reduce ~degree mb);
      ("fan-out forward", fun ~degree mb -> Micro.fan_out_forward ~degree mb) ]

let gather_sweep () =
  heading
    "Gather (all-to-one), unique DGX-1V configs, 100 MB per GPU (GB/s into root)";
  let results =
    pool_map
      (fun cfg ->
        let gpus = Array.of_list cfg in
        let k = Array.length gpus in
        let handle = Blink.create Server.dgx1v ~gpus in
        let fabric = Blink.fabric handle in
        let elems = elems_of_mb 100. in
        let chunk = chunk_for elems in
        let total_bytes = 4. *. Float.of_int ((k - 1) * elems) in
        let bp, _ = Blink.gather ~chunk_elems:chunk handle ~elems in
        let blink = total_bytes /. (Blink.time handle bp).E.makespan /. 1e9 in
        let channels = Ring.nccl_channels Server.dgx1v ~gpus in
        let spec = Codegen.spec ~chunk_elems:chunk fabric in
        let np, _ = Ring.gather spec ~root:(Blink.root handle) ~elems ~channels in
        let nccl = total_bytes /. (time_fabric fabric np).E.makespan /. 1e9 in
        (config_label gpus, nccl, blink))
      (Alloc.unique_configs Server.dgx1v ~sizes:[ 3; 4; 5; 6 ])
  in
  List.iter
    (fun (label, nccl, blink) ->
      row "  %-16s NCCL %6.1f   Blink %6.1f   (%.2fx)\n" label nccl blink
        (blink /. nccl))
    results;
  let speedups = List.map (fun (_, nccl, blink) -> blink /. nccl) results in
  row "  geometric-mean speedup: %.2fx   max: %.2fx\n" (geomean speedups)
    (List.fold_left Float.max 0. speedups)

let size_sweep () =
  heading "Size sweep (figs 15/17 error bars): 50 MB - 1000 MB on two configs";
  let per_config =
    pool_map
      (fun gpus ->
        let handle = Blink.create Server.dgx1v ~gpus in
        let fabric = Blink.fabric handle in
        let rows =
          List.map
            (fun mbytes ->
              ( mbytes,
                blink_broadcast ~mbytes handle,
                nccl_broadcast ~mbytes Server.dgx1v ~gpus fabric,
                blink_all_reduce ~mbytes handle,
                nccl_all_reduce ~mbytes Server.dgx1v ~gpus fabric ))
            [ 50.; 100.; 250.; 500.; 1000. ]
        in
        (config_label gpus, rows))
      [ [| 1; 4; 5; 6 |]; [| 0; 1; 2; 3; 4; 5; 6; 7 |] ]
  in
  List.iter
    (fun (label, rows) ->
      row "--- gpus %s ---\n" label;
      row "%10s %16s %16s %16s %16s\n" "size" "bcast blink" "bcast nccl"
        "allred blink" "allred nccl";
      List.iter
        (fun (mbytes, bb, bn, ab, an) ->
          row "%8.0fMB %16.1f %16.1f %16.1f %16.1f\n" mbytes bb bn ab an)
        rows)
    per_config

let fig12 () =
  heading "Figure 12: MIAD chunk-size selection (broadcast over 4 GPUs)";
  let handle = Blink.create Server.dgx1v ~gpus:[| 0; 1; 2; 3 |] in
  let elems = elems_of_mb 500. in
  let measure ~chunk_elems =
    let prog, _ = Blink.broadcast ~chunk_elems handle ~elems in
    gbps ~elems (Blink.time handle prog)
  in
  let result = Chunking.tune ~init:262_144 ~measure () in
  List.iteri
    (fun i { Chunking.chunk_elems; throughput } ->
      row "  iteration %2d: chunk %6.2f MB -> %6.1f GB/s\n" (i + 1)
        (Float.of_int chunk_elems *. 4. /. 1e6)
        throughput)
    result.Chunking.trace;
  row "  chosen: %.2f MB\n" (Float.of_int result.Chunking.chosen *. 4. /. 1e6)

(* Theoretical rates in units of one NVLink: Blink = packed tree weight;
   NCCL = ring count (PCIe fallback counts the paper's 1/2 unit). *)
let theory_speedup server gpus =
  let g = Server.nvlink_digraph server ~gpus in
  let connected = Alloc.nvlink_connected server (Array.to_list gpus) in
  let unit = Server.nvlink_bandwidth server in
  let blink_units =
    if connected then (Treegen.plan g ~root:0).Treegen.rate /. unit else 0.5
  in
  let channels = Ring.nccl_channels server ~gpus in
  let nccl_units =
    match channels.Ring.cls with
    | Fabric.Nv -> Float.of_int (Ring.n_rings channels)
    | Fabric.Pcie | Fabric.Net -> 0.5
  in
  blink_units /. nccl_units

let fig14 () =
  heading "Figure 14: theoretical speedup of tree packing vs rings";
  List.iter
    (fun (server, label) ->
      row "--- %s ---\n" label;
      List.iter
        (fun n ->
          let subsets = Blink_graph.Automorphism.subsets ~n:8 ~size:n in
          let speedups =
            List.map (fun s -> theory_speedup server (Array.of_list s)) subsets
          in
          row
            "  %d GPUs: min %.2f  p5 %.2f  median %.2f  p95 %.2f  max %.2f\n"
            n
            (percentile 0. speedups) (percentile 0.05 speedups)
            (percentile 0.5 speedups) (percentile 0.95 speedups)
            (percentile 1.0 speedups))
        [ 3; 4; 5; 6; 7; 8 ])
    [ (Server.dgx1p, "DGX-1P (P100)"); (Server.dgx1v, "DGX-1V (V100)") ]

let broadcast_or_allreduce_sweep ~collective server label =
  heading "%s" label;
  let mbytes = 500. in
  let results =
    pool_map
      (fun cfg ->
        let gpus = Array.of_list cfg in
        let handle = Blink.create server ~gpus in
        let fabric = Blink.fabric handle in
        let blink, nccl =
          match collective with
          | `Broadcast ->
              (blink_broadcast ~mbytes handle, nccl_broadcast ~mbytes server ~gpus fabric)
          | `All_reduce ->
              (blink_all_reduce ~mbytes handle, nccl_all_reduce ~mbytes server ~gpus fabric)
        in
        (config_label gpus, nccl, blink))
      (Alloc.unique_configs server ~sizes:[ 3; 4; 5; 6; 7; 8 ])
  in
  List.iter
    (fun (label, nccl, blink) ->
      row "  %-16s NCCL %6.1f   Blink %6.1f   (%.2fx)\n" label nccl blink
        (blink /. nccl))
    results;
  let speedups = List.map (fun (_, nccl, blink) -> blink /. nccl) results in
  row "  geometric-mean speedup: %.2fx   max: %.2fx\n" (geomean speedups)
    (List.fold_left Float.max 0. speedups)

let fig15 () =
  broadcast_or_allreduce_sweep ~collective:`Broadcast Server.dgx1v
    "Figure 15: Broadcast, all 46 unique DGX-1V configs, 500 MB (GB/s)"

let fig16 () =
  broadcast_or_allreduce_sweep ~collective:`Broadcast Server.dgx1p
    "Figure 16: Broadcast, all 14 unique DGX-1P configs, 500 MB (GB/s)"

let fig17 () =
  broadcast_or_allreduce_sweep ~collective:`All_reduce Server.dgx1v
    "Figure 17: AllReduce, all 46 unique DGX-1V configs, 500 MB (GB/s)"

let fig18 () =
  heading "Figure 18: end-to-end training-time reduction, DGX-1V (Blink vs NCCL)";
  let server = Server.dgx1v in
  (* One representative configuration per GPU count: the one with the
     largest AllReduce gain (the paper picks configs with unique speedups;
     we show best and a median config per count). *)
  let configs =
    List.concat_map
      (fun n ->
        let all = Alloc.unique_configs server ~sizes:[ n ] in
        let scored =
          List.map
            (fun cfg ->
              let gpus = Array.of_list cfg in
              let handle = Blink.create server ~gpus in
              let fabric = Blink.fabric handle in
              let ratio =
                blink_all_reduce ~mbytes:100. handle
                /. nccl_all_reduce ~mbytes:100. server ~gpus fabric
              in
              (ratio, cfg))
            all
          |> List.sort compare
        in
        let best = snd (List.nth scored (List.length scored - 1)) in
        let median = snd (List.nth scored (List.length scored / 2)) in
        List.sort_uniq compare [ best; median ])
      [ 3; 4; 5; 6; 7; 8 ]
  in
  let speedups = ref [] and comm_reds = ref [] in
  row "%-14s %-10s %9s %9s %10s %10s\n" "config" "model" "nccl(ms)" "blink(ms)"
    "time-red%" "comm-red%";
  List.iter
    (fun cfg ->
      let gpus = Array.of_list cfg in
      let handle = Blink.create server ~gpus in
      let fabric = Blink.fabric handle in
      let nccl = nccl_backend server ~gpus fabric in
      let blink = blink_backend handle in
      List.iter
        (fun model ->
          let base = Training.iteration model nccl in
          let ours = Training.iteration model blink in
          let sp = Training.speedup_percent ~baseline:base ours in
          let cr = Training.comm_reduction_percent ~baseline:base ours in
          speedups := sp :: !speedups;
          comm_reds := cr :: !comm_reds;
          row "%-14s %-10s %9.1f %9.1f %10.1f %10.1f\n" (config_label gpus)
            model.Models.name base.Training.iteration_ms ours.Training.iteration_ms
            sp cr)
        Models.all)
    configs;
  row "max time reduction: %.1f%%   mean: %.1f%%\n"
    (List.fold_left Float.max 0. !speedups)
    (List.fold_left ( +. ) 0. !speedups /. Float.of_int (List.length !speedups));
  row "max comm reduction: %.1f%%   mean: %.1f%%\n"
    (List.fold_left Float.max 0. !comm_reds)
    (List.fold_left ( +. ) 0. !comm_reds /. Float.of_int (List.length !comm_reds))

let dgx2_sweep () =
  let gpus = Array.init 16 Fun.id in
  let handle = Blink.create Server.dgx2 ~gpus in
  let fabric = Blink.fabric handle in
  let ring_ch = Ring.nvswitch_channels ~n_ranks:16 () in
  List.map
    (fun kb ->
      let elems = max 16 (kb * 256) in
      let chunk = chunk_for elems in
      let spec = Codegen.spec ~chunk_elems:chunk fabric in
      let bp, _ = Blink.all_reduce ~chunk_elems:chunk handle ~elems in
      let dp, _ = Dbtree.all_reduce spec ~elems in
      let rp, _ = Ring.all_reduce spec ~elems ~channels:ring_ch in
      let blink = Blink.time handle bp in
      let dbt = time_fabric fabric dp in
      let ring = time_fabric fabric rp in
      (kb, elems, blink, dbt, ring))
    [ 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144 ]

let fig19_20 () =
  heading "Figures 19-20: DGX-2 AllReduce, Blink one-hop vs NCCL (dbtree/ring)";
  row "%10s %14s %14s %14s %17s %14s\n" "size" "blink" "nccl-dbtree"
    "nccl-ring" "latency-speedup" "tput-speedup";
  List.iter
    (fun (kb, elems, blink, dbt, ring) ->
      let lat r = r.E.makespan *. 1e6 in
      let nccl_best_lat = Float.min (lat dbt) (lat ring) in
      let nccl_best_tput = Float.max (gbps ~elems dbt) (gbps ~elems ring) in
      row "%8dKB %7.0fus/%4.1f %7.0fus/%4.1f %7.0fus/%4.1f %16.2fx %13.2fx\n" kb
        (lat blink) (gbps ~elems blink) (lat dbt) (gbps ~elems dbt) (lat ring)
        (gbps ~elems ring)
        (nccl_best_lat /. lat blink)
        (gbps ~elems blink /. nccl_best_tput))
    (dgx2_sweep ())

let fig21 () =
  heading "Figure 21: hybrid (PCIe+NVLink) vs NVLink-only broadcast, 500 MB";
  List.iter
    (fun n ->
      let gpus = Micro.chain_gpus n in
      let handle = Blink.create Server.dgx1v ~gpus in
      let elems = elems_of_mb 500. in
      let chunk = chunk_for elems in
      let np, _ = Blink.broadcast ~chunk_elems:chunk handle ~elems in
      let hp, _ = Hybrid.broadcast ~chunk_elems:chunk handle ~elems in
      let nv = gbps ~elems (Blink.time handle np) in
      let hy = gbps ~elems (Blink.time handle hp) in
      row "  %d GPUs: nvlink-only %6.1f   hybrid %6.1f   (+%.1f GB/s)\n" n nv hy
        (hy -. nv))
    [ 3; 4; 5; 6; 7; 8 ]

let fig22a () =
  heading "Figure 22a: multi-server training, 3+5 GPUs over 2 DGX-1V, 40 Gbps";
  let servers = [ (Server.dgx1v, [| 0; 1; 2 |]); (Server.dgx1v, [| 0; 1; 2; 3; 4 |]) ] in
  let ms = Multiserver.create servers in
  let hi = Hierarchical.create servers in
  let backend_of label time_fn =
    Training.memoized_backend ~label (fun bytes ->
        let elems = max 64 (int_of_float (bytes /. Training.bytes_per_elem)) in
        time_fn elems)
  in
  let blink =
    backend_of "blink-3phase" (fun elems ->
        let prog, _ =
          Multiserver.all_reduce ~chunk_elems:(chunk_for elems) ms ~elems
        in
        (Multiserver.time ms prog).E.makespan)
  in
  let horovod =
    backend_of "horovod" (fun elems ->
        let prog, _ =
          Hierarchical.all_reduce ~chunk_elems:(chunk_for elems) hi ~elems
        in
        (Hierarchical.time hi prog).E.makespan)
  in
  row "%-10s %12s %12s %10s\n" "model" "horovod(ms)" "blink(ms)" "time-red%";
  List.iter
    (fun model ->
      let base = Training.iteration model horovod in
      let ours = Training.iteration model blink in
      row "%-10s %12.1f %12.1f %10.1f\n" model.Models.name
        base.Training.iteration_ms ours.Training.iteration_ms
        (Training.speedup_percent ~baseline:base ours))
    Models.all

let fig22b () =
  heading "Figure 22b: AllReduce (100 MB) vs cross-machine bandwidth, 3+5 GPUs";
  let servers = [ (Server.dgx1v, [| 0; 1; 2 |]); (Server.dgx1v, [| 0; 1; 2; 3; 4 |]) ] in
  let elems = elems_of_mb 100. in
  row "%10s %14s %14s\n" "net (Gbps)" "blink (GB/s)" "nccl (GB/s)";
  List.iter
    (fun gbits ->
      let net_bw = gbits /. 8. in
      let ms = Multiserver.create ~net_bw servers in
      let mp, _ = Multiserver.all_reduce ~chunk_elems:(chunk_for elems) ms ~elems in
      let hi = Hierarchical.create ~net_bw servers in
      let hp, _ = Hierarchical.all_reduce ~chunk_elems:(chunk_for elems) hi ~elems in
      row "%10.0f %14.2f %14.2f\n" gbits
        (gbps ~elems (Multiserver.time ms mp))
        (gbps ~elems (Hierarchical.time hi hp)))
    [ 40.; 100.; 200.; 300.; 400.; 600. ]

let treegen_stats () =
  heading "Section 3.2: MWU tree counts vs ILP minimization (8-GPU DGX-1V)";
  let g = Server.nvlink_digraph Server.dgx1v ~gpus:(Array.init 8 Fun.id) in
  List.iter
    (fun epsilon ->
      let raw = Treegen.pack ~epsilon g ~root:0 in
      let mini = Treegen.minimize g raw in
      let unit = Server.nvlink_bandwidth Server.dgx1v in
      let weights = List.map (fun t -> t.Treegen.weight /. unit) raw.Treegen.trees in
      row
        "  eps=%.2f: MWU %d trees (weights %.3f..%.3f, rate %.2f units) -> ILP %d trees (rate %.2f units)\n"
        epsilon
        (List.length raw.Treegen.trees)
        (List.fold_left Float.min infinity weights)
        (List.fold_left Float.max 0. weights)
        (raw.Treegen.rate /. unit)
        (List.length mini.Treegen.trees)
        (mini.Treegen.rate /. unit))
    [ 0.2; 0.1; 0.05; 0.02 ]

(* ------------------------------------------------------------------ *)
(* Ablations (design choices from DESIGN.md) *)

let ablation_ilp () =
  heading "Ablation: ILP tree minimization on/off (8-GPU DGX-1V AllReduce, 500 MB)";
  let gpus = Array.init 8 Fun.id in
  let g = Server.nvlink_digraph Server.dgx1v ~gpus in
  let fabric = Fabric.of_server Server.dgx1v ~gpus in
  let elems = elems_of_mb 500. in
  let measure packing =
    let trees = Blink.trees_of_packing g packing in
    let spec = Codegen.spec ~chunk_elems:(chunk_for elems) fabric in
    let prog, _ = Codegen.all_reduce spec ~elems ~trees in
    gbps ~elems (time_fabric fabric prog)
  in
  let raw = Treegen.pack_undirected ~epsilon:0.05 g ~root:0 in
  let mini = Treegen.minimize g raw in
  row "  MWU only: %d trees -> %.1f GB/s\n" (List.length raw.Treegen.trees) (measure raw);
  row "  with ILP: %d trees -> %.1f GB/s\n" (List.length mini.Treegen.trees) (measure mini)

let ablation_streams () =
  heading "Ablation: stream management on/off (8-GPU DGX-1V AllReduce, 500 MB)";
  let handle = Blink.create Server.dgx1v ~gpus:(Array.init 8 Fun.id) in
  let elems = elems_of_mb 500. in
  List.iter
    (fun reuse ->
      let prog, _ =
        Blink.all_reduce ~chunk_elems:(chunk_for elems) ~stream_reuse:reuse handle ~elems
      in
      row "  stream management %-3s: %.1f GB/s\n" (if reuse then "on" else "off")
        (gbps ~elems (Blink.time handle prog)))
    [ true; false ]

let ablation_chunk () =
  heading "Ablation: fixed chunk sizes vs MIAD (8-GPU DGX-1V broadcast, 500 MB)";
  let handle = Blink.create Server.dgx1v ~gpus:(Array.init 8 Fun.id) in
  let elems = elems_of_mb 500. in
  let measure ~chunk_elems =
    let prog, _ = Blink.broadcast ~chunk_elems handle ~elems in
    gbps ~elems (Blink.time handle prog)
  in
  List.iter
    (fun c -> row "  fixed %6.2f MB: %.1f GB/s\n" (Float.of_int c *. 4. /. 1e6) (measure ~chunk_elems:c))
    [ 16_384; 262_144; 1_048_576; 8_388_608 ];
  let tuned = Chunking.tune ~init:262_144 ~measure () in
  row "  MIAD-chosen %.2f MB: %.1f GB/s (%d probes)\n"
    (Float.of_int tuned.Chunking.chosen *. 4. /. 1e6)
    (measure ~chunk_elems:tuned.Chunking.chosen)
    (List.length tuned.Chunking.trace)

let ablation_hybrid () =
  heading "Ablation: hybrid split optimal (eq. 8) vs naive proportional";
  let handle = Blink.create Server.dgx1v ~gpus:[| 0; 1; 2; 3 |] in
  let elems = elems_of_mb 500. in
  let np, _ = Blink.broadcast handle ~elems in
  let hp, _ = Hybrid.broadcast handle ~elems in
  (* naive split ignores T_dpa: emulate by zero dpa then charging it *)
  let naive, _ = Hybrid.broadcast ~t_dpa:0. handle ~elems in
  let t_naive =
    (Blink.time handle naive).E.makespan +. Hybrid.dpa_latency ~n_ranks:4
  in
  row "  nvlink-only:            %.1f GB/s\n" (gbps ~elems (Blink.time handle np));
  row "  hybrid, eq.8 split:     %.1f GB/s\n" (gbps ~elems (Blink.time handle hp));
  row "  hybrid, naive split:    %.1f GB/s\n"
    (4. *. Float.of_int elems /. t_naive /. 1e9)

let all_figures () =
  fig2 (); fig3 (); fig5 (); fig7 (); fig8 (); fig26 (); fig12 (); fig14 ();
  fig15 (); fig16 (); fig17 (); gather_sweep (); size_sweep (); fig18 ();
  fig19_20 (); fig21 (); fig22a (); fig22b (); treegen_stats ();
  ablation_ilp (); ablation_streams (); ablation_chunk (); ablation_hybrid ()

let registry =
  [
    ("fig2", fig2); ("fig3", fig3); ("fig5", fig5); ("fig7", fig7);
    ("fig8", fig8); ("fig12", fig12); ("fig14", fig14); ("fig15", fig15);
    ("fig16", fig16); ("fig17", fig17); ("fig18", fig18);
    ("fig19", fig19_20); ("fig20", fig19_20); ("fig21", fig21);
    ("fig22a", fig22a); ("fig22b", fig22b); ("fig26", fig26);
    ("gather", gather_sweep); ("sweep", size_sweep);
    ("treegen-stats", treegen_stats);
    ("ablation-ilp", ablation_ilp); ("ablation-streams", ablation_streams);
    ("ablation-chunk", ablation_chunk); ("ablation-hybrid", ablation_hybrid);
  ]
