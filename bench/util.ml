(* Shared helpers for the figure-reproduction harness. *)

module Server = Blink_topology.Server
module Fabric = Blink_topology.Fabric
module Alloc = Blink_topology.Alloc
module Codegen = Blink_collectives.Codegen
module Tree = Blink_collectives.Tree
module Blink = Blink_core.Blink
module Ring = Blink_baselines.Ring
module E = Blink_sim.Engine

let mb = 1_000_000.
let elems_of_mb m = int_of_float (m *. mb /. 4.)

(* Chunk policy used uniformly across methods in the figures: 1 MiB for
   large buffers, shrinking for small ones so every transfer still
   pipelines. *)
let chunk_for elems = Blink.heuristic_chunk ~elems

let heading fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "\n=== %s ===\n%!" s)
    fmt

let row fmt = Printf.printf fmt

let gbps ~elems (r : E.result) = Blink.algbw_gbps ~elems r

let time_fabric fabric prog =
  E.run ~resources:(Fabric.resources fabric) prog

(* Blink vs NCCL measurements on one allocation. *)
let blink_broadcast ?(mbytes = 500.) handle =
  let elems = elems_of_mb mbytes in
  let prog, _ = Blink.broadcast ~chunk_elems:(chunk_for elems) handle ~elems in
  gbps ~elems (Blink.time handle prog)

let blink_all_reduce ?(mbytes = 500.) handle =
  let elems = elems_of_mb mbytes in
  let prog, _ = Blink.all_reduce ~chunk_elems:(chunk_for elems) handle ~elems in
  gbps ~elems (Blink.time handle prog)

let nccl_broadcast ?(mbytes = 500.) server ~gpus fabric =
  let elems = elems_of_mb mbytes in
  let channels = Ring.nccl_channels server ~gpus in
  let spec = Codegen.spec ~chunk_elems:(chunk_for elems) fabric in
  let prog, _ = Ring.broadcast spec ~root:0 ~elems ~channels in
  gbps ~elems (time_fabric fabric prog)

let nccl_all_reduce ?(mbytes = 500.) server ~gpus fabric =
  let elems = elems_of_mb mbytes in
  let channels = Ring.nccl_channels server ~gpus in
  let spec = Codegen.spec ~chunk_elems:(chunk_for elems) fabric in
  let prog, _ = Ring.all_reduce spec ~elems ~channels in
  gbps ~elems (time_fabric fabric prog)

(* Simulator-backed AllReduce cost functions for the training model. The
   Blink side goes through the handle's compiled-plan cache; the ring
   baseline has no plan layer, so it keeps the generic memoizer. *)
let blink_backend handle = Blink_dnn.Training.plan_backend handle

let nccl_backend server ~gpus fabric =
  let channels = Ring.nccl_channels server ~gpus in
  Blink_dnn.Training.memoized_backend ~label:"nccl" (fun bytes ->
      let elems = max 64 (int_of_float (bytes /. Blink_dnn.Training.bytes_per_elem)) in
      let spec = Codegen.spec ~chunk_elems:(chunk_for elems) fabric in
      let prog, _ = Ring.all_reduce spec ~elems ~channels in
      (time_fabric fabric prog).E.makespan)

(* ------------------------------------------------------------------ *)
(* Versioned bench artifacts: every BENCH_*.json goes through one writer
   that stamps the schema version and enough host metadata to judge
   whether two artifacts are comparable (same schema, same word size,
   same compiler) before the regression gate diffs them. *)

module Json = Blink_telemetry.Json

let schema_version = 2

let host_metadata () =
  Json.Obj
    [
      ("hostname", Json.str (Unix.gethostname ()));
      ("os_type", Json.str Sys.os_type);
      ("ocaml_version", Json.str Sys.ocaml_version);
      ("word_size", Json.int Sys.word_size);
      ("recommended_domains", Json.int (Domain.recommended_domain_count ()));
    ]

(* Files written this run, so [guard_artifact] knows whether a dying
   suite already left its evidence behind. *)
let written : (string, unit) Hashtbl.t = Hashtbl.create 8

let write_bench_json ~file ~suite fields =
  let doc =
    Json.Obj
      (("schema_version", Json.int schema_version)
      :: ("suite", Json.str suite)
      :: ("host", host_metadata ())
      :: fields)
  in
  let oc = open_out file in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Hashtbl.replace written file ();
  row "  wrote %s\n" file

(* CI uploads BENCH_*.json to explain gate failures — so a suite that
   dies on an exception *before* its write (the gates themselves all
   write first, then [exit 1]) must still leave an artifact. The stub
   records the abort and the exception; the non-zero exit still fails
   the job. *)
let guard_artifact ~file ~suite f =
  Hashtbl.remove written file;
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    if not (Hashtbl.mem written file) then
      write_bench_json ~file ~suite
        [
          ("aborted", Json.Bool true);
          ("error", Json.str (Printexc.to_string e));
        ];
    Printexc.raise_with_backtrace e bt

let geomean = function
  | [] -> nan
  | xs ->
      exp (List.fold_left (fun acc x -> acc +. log x) 0. xs /. Float.of_int (List.length xs))

let percentile p xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (p *. Float.of_int (n - 1)) in
      List.nth sorted idx

let config_label gpus = Alloc.to_string (Array.to_list gpus)
