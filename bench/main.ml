(* Benchmark harness: `dune exec bench/main.exe` regenerates every figure of
   the paper's evaluation (see EXPERIMENTS.md for paper-vs-measured) and
   finishes with Bechamel micro-benchmarks of the planning and simulation
   hot paths. `dune exec bench/main.exe -- fig15` runs a single target;
   `-- list` enumerates them. *)

module Server = Blink_topology.Server
module Blink = Blink_core.Blink
module Treegen = Blink_core.Treegen

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: planner and simulator costs. *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  Util.heading "Bechamel: planner / simulator hot paths (ns per run)";
  let gpus8 = Array.init 8 Fun.id in
  let graph = Server.nvlink_digraph Server.dgx1v ~gpus:gpus8 in
  let handle = Blink.create Server.dgx1v ~gpus:gpus8 in
  let elems = 25_000_000 in
  let prog, _ = Blink.all_reduce ~chunk_elems:1_048_576 handle ~elems in
  let tests =
    [
      Test.make ~name:"maxflow-rate"
        (Staged.stage (fun () -> ignore (Treegen.best_root graph)));
      Test.make ~name:"mwu-pack"
        (Staged.stage (fun () -> ignore (Treegen.pack ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"plan-with-ilp"
        (Staged.stage (fun () -> ignore (Treegen.plan ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"plan-undirected"
        (Staged.stage (fun () ->
             ignore (Treegen.plan_undirected ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"codegen-allreduce-100MB"
        (Staged.stage (fun () ->
             ignore (Blink.all_reduce ~chunk_elems:1_048_576 handle ~elems)));
      Test.make ~name:"engine-run-100MB"
        (Staged.stage (fun () -> ignore (Blink.time handle prog)));
      Test.make ~name:"ring-channel-search"
        (Staged.stage (fun () ->
             ignore (Blink_baselines.Ring.nccl_channels Server.dgx1v ~gpus:gpus8)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Plan-cache mode: prove that planning work is done once and repeated
   collectives replay the compiled plan. *)

module Comm = Blink_core.Comm
module Plan = Blink_core.Plan

let plan_cache_suite () =
  let iters = 100 in
  let elems = 1_000_000 in
  Util.heading "Plan cache: %dx Comm.all_reduce of %d elems on gpus {1,4,5,6}"
    iters elems;
  let c = Comm.init Server.dgx1v ~gpus:[| 1; 4; 5; 6 |] in
  let inputs =
    Array.init 4 (fun r ->
        Array.init elems (fun i -> Float.of_int (((i * 3) + (r * 7)) mod 11)))
  in
  let wall f =
    let t0 = Sys.time () in
    let x = f () in
    (Sys.time () -. t0, x)
  in
  (* First call compiles: tree extraction + MIAD tuning + codegen. *)
  let t_first, _ = wall (fun () -> Comm.all_reduce c inputs) in
  let t_rest = ref 0. in
  for _ = 2 to iters do
    let t, _ = wall (fun () -> Comm.all_reduce c inputs) in
    t_rest := !t_rest +. t
  done;
  let { Blink.hits; misses } = Comm.plan_cache_stats c in
  let avg_rest = !t_rest /. Float.of_int (iters - 1) in
  Util.row "  first call (plan + execute):    %8.1f ms\n" (t_first *. 1e3);
  Util.row "  later calls (cached plan):      %8.1f ms avg\n" (avg_rest *. 1e3);
  Util.row "  planning amortization:          %8.1fx\n" (t_first /. avg_rest);
  Util.row "  plan cache: %d hits / %d misses (%.1f%% hit rate)\n" hits misses
    (100. *. Float.of_int hits /. Float.of_int (hits + misses));
  (* Split one cached iteration into its passes on a timing-only plan. *)
  let handle = Comm.handle c in
  let t_plan_hit, plan =
    wall (fun () -> Blink.plan handle Plan.All_reduce ~elems)
  in
  let t_timing, _ = wall (fun () -> Plan.execute ~data:false plan) in
  let t_replay, _ = wall (fun () -> Plan.execute plan) in
  Util.row "  per call: plan lookup %.3f ms, timing pass %.1f ms, \
            timing+data passes %.1f ms\n"
    (t_plan_hit *. 1e3) (t_timing *. 1e3) (t_replay *. 1e3);
  (* Dump the communicator's telemetry registry — the same counters the
     rows above summarize — as a machine-readable artifact for CI. *)
  let out = "BENCH_plan_cache.json" in
  let oc = open_out out in
  output_string oc
    (Blink_telemetry.Telemetry.metrics_json_string (Comm.telemetry c));
  output_char oc '\n';
  close_out oc;
  Util.row "  telemetry snapshot written to %s\n" out

(* ------------------------------------------------------------------ *)
(* Parallel-plan mode: the same planning sweep driven by a 1-domain pool
   (sequential by construction) and a multi-domain pool, with wall-clock
   and speedup dumped as a machine-readable artifact. The planning work —
   per-server MWU + ILP packing in Multiserver.create, MIAD tuning and
   codegen in Blink.prewarm — is what the domain pool fans out. *)

module Pool = Blink_parallel.Pool
module Multiserver = Blink_core.Multiserver
module Json = Blink_telemetry.Json

let parallel_plan_suite () =
  Util.heading
    "Parallel planning: multi-server packing + plan prewarm, 1 vs N domains";
  let cluster n = List.init n (fun _ -> (Server.dgx1v, Array.init 8 Fun.id)) in
  let prewarm_keys =
    List.concat_map
      (fun elems -> [ (Plan.All_reduce, elems); (Plan.Broadcast, elems) ])
      [ 262_144; 1_048_576; 4_194_304; 16_777_216 ]
  in
  let jobs =
    [
      ( "multiserver-2x8",
        fun pool -> ignore (Multiserver.create ~pool (cluster 2)) );
      ( "multiserver-4x8",
        fun pool -> ignore (Multiserver.create ~pool (cluster 4)) );
      ( "prewarm-8keys",
        fun pool ->
          let handle =
            Blink.create Server.dgx1v ~gpus:(Array.init 8 Fun.id)
          in
          ignore (Blink.prewarm ~pool handle prewarm_keys) );
    ]
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Warm-up pass so allocator effects don't favour either side. *)
  Pool.with_pool ~domains:1 (fun pool ->
      List.iter (fun (_, job) -> job pool) jobs);
  let time_all pool = List.map (fun (name, job) -> (name, wall (fun () -> job pool))) jobs in
  let seq = Pool.with_pool ~domains:1 time_all in
  let requested = max 4 (Pool.default_domains ()) in
  let par_domains, par =
    Pool.with_pool ~domains:requested (fun pool ->
        (Pool.domains pool, time_all pool))
  in
  let total xs = List.fold_left (fun acc (_, t) -> acc +. t) 0. xs in
  let t_seq = total seq and t_par = total par in
  let speedup = if t_par > 0. then t_seq /. t_par else 0. in
  Util.row "  %-18s %12s %12s %9s\n" "job" "1 domain"
    (Printf.sprintf "%d domains" par_domains)
    "speedup";
  List.iter2
    (fun (name, ts) (_, tp) ->
      Util.row "  %-18s %10.1f ms %10.1f ms %8.2fx\n" name (ts *. 1e3)
        (tp *. 1e3)
        (if tp > 0. then ts /. tp else 0.))
    seq par;
  Util.row "  %-18s %10.1f ms %10.1f ms %8.2fx\n" "total" (t_seq *. 1e3)
    (t_par *. 1e3) speedup;
  Util.row
    "  (recommended domains on this machine: %d; speedup needs real cores)\n"
    (Pool.default_domains ());
  let out = "BENCH_parallel_plan.json" in
  let oc = open_out out in
  let job_objs =
    List.map2
      (fun (name, ts) (_, tp) ->
        Json.Obj
          [
            ("job", Json.str name);
            ("seq_s", Json.float ts);
            ("par_s", Json.float tp);
            ("speedup", Json.float (if tp > 0. then ts /. tp else 0.));
          ])
      seq par
  in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("suite", Json.str "parallel_plan");
            ("recommended_domains", Json.int (Pool.default_domains ()));
            ("par_domains", Json.int par_domains);
            ("seq_total_s", Json.float t_seq);
            ("par_total_s", Json.float t_par);
            ("speedup", Json.float speedup);
            ("jobs", Json.List job_objs);
          ]));
  output_char oc '\n';
  close_out oc;
  Util.row "  results written to %s\n" out

(* ------------------------------------------------------------------ *)

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      Figures.all_figures ();
      plan_cache_suite ();
      parallel_plan_suite ();
      bechamel_suite ();
      print_newline ()
  | _ :: args ->
      List.iter
        (fun arg ->
          match arg with
          | "list" ->
              List.iter (fun (name, _) -> print_endline name) Figures.registry;
              print_endline "plan-cache";
              print_endline "parallel-plan";
              print_endline "bechamel"
          | "all" ->
              Figures.all_figures ();
              plan_cache_suite ();
              parallel_plan_suite ();
              bechamel_suite ()
          | "plan-cache" -> plan_cache_suite ()
          | "parallel-plan" -> parallel_plan_suite ()
          | "bechamel" -> bechamel_suite ()
          | name -> (
              match List.assoc_opt name Figures.registry with
              | Some f -> f ()
              | None ->
                  Printf.eprintf
                    "unknown target %S (use `list` to enumerate)\n" name;
                  exit 1))
        args
  | [] -> assert false
