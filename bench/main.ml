(* Benchmark harness: `dune exec bench/main.exe` regenerates every figure of
   the paper's evaluation (see EXPERIMENTS.md for paper-vs-measured) and
   finishes with Bechamel micro-benchmarks of the planning and simulation
   hot paths. `dune exec bench/main.exe -- fig15` runs a single target;
   `-- list` enumerates them. *)

module Server = Blink_topology.Server
module Blink = Blink_core.Blink
module Treegen = Blink_core.Treegen
module Json = Blink_telemetry.Json
module Telemetry = Blink_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: planner and simulator costs. *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  Util.heading "Bechamel: planner / simulator hot paths (ns per run)";
  let gpus8 = Array.init 8 Fun.id in
  let graph = Server.nvlink_digraph Server.dgx1v ~gpus:gpus8 in
  let handle = Blink.create Server.dgx1v ~gpus:gpus8 in
  let elems = 25_000_000 in
  let prog, _ = Blink.all_reduce ~chunk_elems:1_048_576 handle ~elems in
  let tests =
    [
      Test.make ~name:"maxflow-rate"
        (Staged.stage (fun () -> ignore (Treegen.best_root graph)));
      Test.make ~name:"mwu-pack"
        (Staged.stage (fun () -> ignore (Treegen.pack ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"plan-with-ilp"
        (Staged.stage (fun () -> ignore (Treegen.plan ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"plan-undirected"
        (Staged.stage (fun () ->
             ignore (Treegen.plan_undirected ~epsilon:0.1 graph ~root:0)));
      Test.make ~name:"codegen-allreduce-100MB"
        (Staged.stage (fun () ->
             ignore (Blink.all_reduce ~chunk_elems:1_048_576 handle ~elems)));
      Test.make ~name:"engine-run-100MB"
        (Staged.stage (fun () -> ignore (Blink.time handle prog)));
      Test.make ~name:"ring-channel-search"
        (Staged.stage (fun () ->
             ignore (Blink_baselines.Ring.nccl_channels Server.dgx1v ~gpus:gpus8)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
        stats)
    tests

(* ------------------------------------------------------------------ *)
(* Plan-cache mode: prove that planning work is done once and repeated
   collectives replay the compiled plan. *)

module Comm = Blink_core.Comm
module Plan = Blink_core.Plan

let plan_cache_suite () =
  let iters = 100 in
  let elems = 1_000_000 in
  Util.heading "Plan cache: %dx Comm.all_reduce of %d elems on gpus {1,4,5,6}"
    iters elems;
  let c = Comm.init Server.dgx1v ~gpus:[| 1; 4; 5; 6 |] in
  let inputs =
    Array.init 4 (fun r ->
        Array.init elems (fun i -> Float.of_int (((i * 3) + (r * 7)) mod 11)))
  in
  let wall f =
    let t0 = Sys.time () in
    let x = f () in
    (Sys.time () -. t0, x)
  in
  (* First call compiles: tree extraction + MIAD tuning + codegen. *)
  let t_first, _ = wall (fun () -> Comm.all_reduce c inputs) in
  let t_rest = ref 0. in
  for _ = 2 to iters do
    let t, _ = wall (fun () -> Comm.all_reduce c inputs) in
    t_rest := !t_rest +. t
  done;
  let { Blink.hits; misses } = Comm.plan_cache_stats c in
  let avg_rest = !t_rest /. Float.of_int (iters - 1) in
  Util.row "  first call (plan + execute):    %8.1f ms\n" (t_first *. 1e3);
  Util.row "  later calls (cached plan):      %8.1f ms avg\n" (avg_rest *. 1e3);
  Util.row "  planning amortization:          %8.1fx\n" (t_first /. avg_rest);
  Util.row "  plan cache: %d hits / %d misses (%.1f%% hit rate)\n" hits misses
    (100. *. Float.of_int hits /. Float.of_int (hits + misses));
  (* Split one cached iteration into its passes on a timing-only plan. *)
  let handle = Comm.handle c in
  let t_plan_hit, plan =
    wall (fun () -> Blink.plan handle Plan.All_reduce ~elems)
  in
  let t_timing, _ = wall (fun () -> Plan.execute ~data:false plan) in
  let t_replay, _ = wall (fun () -> Plan.execute plan) in
  Util.row "  per call: plan lookup %.3f ms, timing pass %.1f ms, \
            timing+data passes %.1f ms\n"
    (t_plan_hit *. 1e3) (t_timing *. 1e3) (t_replay *. 1e3);
  (* Dump the final cache counters plus the communicator's full telemetry
     registry — the same counters the rows above summarize — as a
     machine-readable artifact for CI and the regression gate. *)
  let { Blink.hits = hits_final; misses = misses_final } =
    Comm.plan_cache_stats c
  in
  Util.write_bench_json ~file:"BENCH_plan_cache.json" ~suite:"plan_cache"
    [
      ("iters", Json.int iters);
      ("elems", Json.int elems);
      ("hits", Json.int hits_final);
      ("misses", Json.int misses_final);
      ( "hit_rate",
        Json.float
          (Float.of_int hits_final
          /. Float.of_int (max 1 (hits_final + misses_final))) );
      ("metrics", Telemetry.metrics_json (Comm.telemetry c));
    ]

(* ------------------------------------------------------------------ *)
(* Parallel-plan mode: the same planning sweep driven by a 1-domain pool
   (sequential by construction) and a multi-domain pool, with wall-clock
   and speedup dumped as a machine-readable artifact. The planning work —
   per-server MWU + ILP packing in Multiserver.create, MIAD tuning and
   codegen in Blink.prewarm — is what the domain pool fans out. *)

module Pool = Blink_parallel.Pool
module Multiserver = Blink_core.Multiserver

let parallel_plan_measured () =
  let cluster n = List.init n (fun _ -> (Server.dgx1v, Array.init 8 Fun.id)) in
  let prewarm_keys =
    List.concat_map
      (fun elems -> [ (Plan.All_reduce, elems); (Plan.Broadcast, elems) ])
      [ 262_144; 1_048_576; 4_194_304; 16_777_216 ]
  in
  let jobs =
    [
      ( "multiserver-2x8",
        fun pool -> ignore (Multiserver.create ~pool (cluster 2)) );
      ( "multiserver-4x8",
        fun pool -> ignore (Multiserver.create ~pool (cluster 4)) );
      ( "prewarm-8keys",
        fun pool ->
          let handle =
            Blink.create Server.dgx1v ~gpus:(Array.init 8 Fun.id)
          in
          ignore (Blink.prewarm ~pool handle prewarm_keys) );
    ]
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Warm-up pass so allocator effects don't favour either side. *)
  Pool.with_pool ~domains:1 (fun pool ->
      List.iter (fun (_, job) -> job pool) jobs);
  let time_all pool = List.map (fun (name, job) -> (name, wall (fun () -> job pool))) jobs in
  let seq = Pool.with_pool ~domains:1 time_all in
  (* Ask for 4 domains but never exceed what this host can actually run
     in parallel: oversubscribing cores makes the "parallel" run slower
     than sequential and the artifact misleading. *)
  let requested = 4 in
  let effective = min requested (max 1 (Pool.default_domains ())) in
  let par_domains, par =
    Pool.with_pool ~domains:effective (fun pool ->
        (Pool.domains pool, time_all pool))
  in
  let total xs = List.fold_left (fun acc (_, t) -> acc +. t) 0. xs in
  let t_seq = total seq and t_par = total par in
  let speedup = if t_par > 0. then t_seq /. t_par else 0. in
  let expected_on_this_host = speedup < 1.0 && par_domains < requested in
  Util.row "  %-18s %12s %12s %9s\n" "job" "1 domain"
    (Printf.sprintf "%d domains" par_domains)
    "speedup";
  List.iter2
    (fun (name, ts) (_, tp) ->
      Util.row "  %-18s %10.1f ms %10.1f ms %8.2fx\n" name (ts *. 1e3)
        (tp *. 1e3)
        (if tp > 0. then ts /. tp else 0.))
    seq par;
  Util.row "  %-18s %10.1f ms %10.1f ms %8.2fx\n" "total" (t_seq *. 1e3)
    (t_par *. 1e3) speedup;
  Util.row
    "  (requested %d domains, ran %d; recommended on this machine: %d)\n"
    requested par_domains (Pool.default_domains ());
  if expected_on_this_host then
    Util.row
    "  (sub-1.0 speedup is expected on this host: too few real cores)\n";
  let job_objs =
    List.map2
      (fun (name, ts) (_, tp) ->
        Json.Obj
          [
            ("job", Json.str name);
            ("seq_s", Json.float ts);
            ("par_s", Json.float tp);
            ("speedup", Json.float (if tp > 0. then ts /. tp else 0.));
          ])
      seq par
  in
  Util.write_bench_json ~file:"BENCH_parallel_plan.json" ~suite:"parallel_plan"
    [
      ("skipped_no_domains", Json.Bool false);
      ("recommended_domains", Json.int (Pool.default_domains ()));
      ("requested_domains", Json.int requested);
      ("par_domains", Json.int par_domains);
      ("expected_on_this_host", Json.Bool expected_on_this_host);
      ("seq_total_s", Json.float t_seq);
      ("par_total_s", Json.float t_par);
      ("speedup", Json.float speedup);
      ("jobs", Json.List job_objs);
    ];
  (* Speedup gate: only enforced where parallelism actually exists.
     [expected_on_this_host] (fewer real cores than requested) keeps the
     gate advisory on laptops; the BLINK_DOMAINS=4 CI job makes it
     hard. *)
  if (not expected_on_this_host) && speedup < 1.05 then begin
    Printf.eprintf
      "parallel-plan: %.2fx speedup with %d domains (gate: >= 1.05x)\n"
      speedup par_domains;
    exit 1
  end

(* Single-domain hosts (CI runners, small containers) have no
   parallelism to measure: a 1-vs-1 comparison would only publish
   scheduler noise. Report the skip explicitly so the artifact says why
   the numbers are absent instead of carrying misleading ones. *)
let parallel_plan_suite () =
  Util.heading
    "Parallel planning: multi-server packing + plan prewarm, 1 vs N domains";
  if Pool.default_domains () <= 1 then begin
    Util.row
      "  skipped: this host recommends a single domain — nothing to \
       parallelize\n";
    Util.write_bench_json ~file:"BENCH_parallel_plan.json"
      ~suite:"parallel_plan"
      [
        ("skipped_no_domains", Json.Bool true);
        ("recommended_domains", Json.int (Pool.default_domains ()));
      ]
  end
  else parallel_plan_measured ()

(* ------------------------------------------------------------------ *)
(* Overlap mode: planning hidden behind execution. The foreground domain
   replays an already-compiled plan (the training loop stand-in) while
   [Blink.prewarm_async] pipelines next-allocation tuning + codegen on a
   pool worker. Sequential = prewarm then replay; overlapped = submit,
   replay, await. The replay loop is calibrated to roughly the prewarm
   wall, so perfect overlap approaches 2x. *)

let overlap_measured () =
  let gpus = Array.init 8 Fun.id in
  let keys =
    List.concat_map
      (fun elems -> [ (Plan.All_reduce, elems); (Plan.Broadcast, elems) ])
      [ 262_144; 1_048_576; 4_194_304 ]
  in
  let mk () = Blink.create Server.dgx1v ~gpus in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Foreground work: steady-state timing replays of a compiled plan. *)
  let live = Blink.create Server.dgx1v ~gpus:[| 1; 4; 5; 6 |] in
  let plan = Blink.plan live Plan.All_reduce ~elems:1_000_000 in
  ignore (Plan.execute ~data:false plan);
  (* Calibrate: one throwaway 1-domain prewarm (also the warm-up pass)
     sizes the replay loop to the single-worker pipeline wall — what the
     async job actually costs, since it runs on one pool worker while
     [prewarm ~pool] fans the same keys out across all of them. *)
  let prewarm_wall =
    Pool.with_pool ~domains:1 (fun pool ->
        wall (fun () -> ignore (Blink.prewarm ~pool (mk ()) keys)))
  in
  let one_exec =
    wall (fun () -> for _ = 1 to 10 do ignore (Plan.execute ~data:false plan) done)
    /. 10.
  in
  let exec_iters =
    max 10 (int_of_float (prewarm_wall /. Float.max 1e-9 one_exec))
  in
  let exec_loop () =
    for _ = 1 to exec_iters do
      ignore (Plan.execute ~data:false plan)
    done
  in
  let domains = min 4 (max 2 (Pool.default_domains ())) in
  let seq_total, overlap_total =
    Pool.with_pool ~domains (fun pool ->
        let h_seq = mk () in
        let seq =
          wall (fun () ->
              ignore (Blink.prewarm ~pool h_seq keys);
              exec_loop ())
        in
        let h_ovl = mk () in
        let ovl =
          wall (fun () ->
              let job = Blink.prewarm_async ~pool h_ovl keys in
              exec_loop ();
              ignore (Blink.prewarm_await h_ovl job))
        in
        (seq, ovl))
  in
  let speedup = if overlap_total > 0. then seq_total /. overlap_total else 0. in
  Util.row "  prewarm wall %.1f ms, replay loop %d x %.3f ms\n"
    (prewarm_wall *. 1e3) exec_iters (one_exec *. 1e3);
  Util.row "  sequential %.1f ms, overlapped %.1f ms: %.2fx\n"
    (seq_total *. 1e3) (overlap_total *. 1e3) speedup;
  let effective = min domains (Pool.default_domains ()) in
  let expected_on_this_host = speedup < 1.0 && effective < 2 in
  Util.write_bench_json ~file:"BENCH_overlap.json" ~suite:"overlap"
    [
      ("skipped_no_domains", Json.Bool false);
      ("recommended_domains", Json.int (Pool.default_domains ()));
      ("pool_domains", Json.int domains);
      ("prewarm_wall_s", Json.float prewarm_wall);
      ("exec_iters", Json.int exec_iters);
      ("exec_wall_s", Json.float one_exec);
      ("seq_total_s", Json.float seq_total);
      ("overlap_total_s", Json.float overlap_total);
      ("speedup", Json.float speedup);
      ("expected_on_this_host", Json.Bool expected_on_this_host);
    ];
  if (not expected_on_this_host) && speedup < 1.10 then begin
    Printf.eprintf
      "overlap: prewarm_async hid only %.2fx with %d domains (gate: >= \
       1.10x)\n"
      speedup domains;
    exit 1
  end

let overlap_suite () =
  Util.heading
    "Overlap: prewarm_async planning hidden behind plan replay, seq vs async";
  if Pool.default_domains () <= 1 then begin
    Util.row
      "  skipped: this host recommends a single domain — prewarm_async \
       degenerates to sequential\n";
    Util.write_bench_json ~file:"BENCH_overlap.json" ~suite:"overlap"
      [
        ("skipped_no_domains", Json.Bool true);
        ("recommended_domains", Json.int (Pool.default_domains ()));
      ]
  end
  else overlap_measured ()

(* ------------------------------------------------------------------ *)
(* Replay mode: steady-state cost of re-executing a compiled plan.

   Seed path (what every execute cost before the prepare/run split): a
   full Engine.run — validation, schedule lowering, event-queue and
   result allocation — plus a fresh float-array reference memory for the
   data replay. Prepared path: Plan.execute replays the cached schedule
   against the plan's arena and pooled Bigarray memory, so the steady
   state allocates (almost) nothing. The suite measures per-execute wall
   clock and minor-heap words for both across all six collectives and
   enforces the allocation budget on the timing-only fast path. *)

module E = Blink_sim.Engine
module Sem = Blink_sim.Semantics
module Codegen = Blink_collectives.Codegen

(* Minor words a steady-state timing-only Plan.execute may allocate per
   run. The arena makes the engine itself allocation-free; the budget
   covers the execution record, telemetry bookkeeping and Gc sampling.
   Exceeding it means someone reintroduced a per-run allocation that
   scales with the program (events list, result arrays, dependents). *)
let alloc_guard_minor_words = 2048.

let replay_suite () =
  let iters = 100 in
  let elems = 1_000_000 in
  Util.heading
    "Replay: %dx per-collective re-execution of %d elems on gpus {1,4,5,6}"
    iters elems;
  let handle = Blink.create Server.dgx1v ~gpus:[| 1; 4; 5; 6 |] in
  let inputs =
    Array.init 4 (fun r ->
        Array.init elems (fun i -> Float.of_int (((i * 3) + (r * 7)) mod 11)))
  in
  let wall_and_words f =
    let t0 = Unix.gettimeofday () in
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    let dw = Gc.minor_words () -. w0 in
    let dt = Unix.gettimeofday () -. t0 in
    (dt /. Float.of_int iters, dw /. Float.of_int iters)
  in
  let collectives =
    [
      Plan.All_reduce;
      Plan.Broadcast;
      Plan.Reduce;
      Plan.Gather;
      Plan.All_gather;
      Plan.Reduce_scatter;
    ]
  in
  Util.row "  %-15s %13s %13s %6s %14s %14s %8s\n" "collective" "seed/exec"
    "prepared/exec" "wall" "seed minor/ex" "prep minor/ex" "alloc";
  let guard_worst = ref 0. in
  let tot_chains = ref 0 and tot_fops = ref 0 in
  let tot_kraw = ref 0 and tot_kcomp = ref 0 and tot_kfused = ref 0 in
  let rows, headline =
    List.fold_left
      (fun (rows, headline) collective ->
        let plan = Blink.plan handle collective ~elems in
        let prog = plan.Plan.program and resources = plan.Plan.resources in
        let layout = plan.Plan.layout in
        let load mem (l : Codegen.layout) =
          Array.iteri
            (fun r buf -> Sem.write mem ~node:r ~buf:l.Codegen.data.(r) buf)
            inputs
        in
        let load_ref rmem =
          Array.iteri
            (fun r buf ->
              Sem.Ref.write rmem ~node:r ~buf:layout.Codegen.data.(r) buf)
            inputs
        in
        let seed_exec () =
          ignore (E.run ~resources prog);
          let rmem = Sem.Ref.memory_of_program prog in
          load_ref rmem;
          Sem.Ref.run prog rmem
        in
        let prep_exec () = ignore (Plan.execute ~load plan) in
        let seed_timing () = ignore (E.run ~resources prog) in
        let prep_timing () = ignore (Plan.execute ~data:false plan) in
        (* One warm round each so first-touch costs (kernel compilation,
           pool sizing, page faults) don't land in either measurement. *)
        seed_exec ();
        prep_exec ();
        prep_timing ();
        let seed_s, seed_w = wall_and_words seed_exec in
        let prep_s, prep_w = wall_and_words prep_exec in
        let seed_t_s, seed_t_w = wall_and_words seed_timing in
        let prep_t_s, prep_t_w = wall_and_words prep_timing in
        (* Simulated makespan of the compiled plan: deterministic on any
           host, so the regression gate can diff it exactly. *)
        let sim_s = Plan.seconds (Plan.execute ~data:false plan) in
        (* Fusion and kernel-table shape: pure functions of the program,
           so the gate diffs them exactly — a drop in batching or a
           fused-chain count change is a planner regression even when
           wall clock hides it. *)
        let prep = plan.Plan.prepared in
        let fusion_on = E.fusion_enabled prep in
        let f_chains = E.fused_chains prep and f_ops = E.fused_ops prep in
        let k_raw, k_compiled, k_fused =
          match plan.Plan.pool_mem with
          | Some mem -> Sem.kernel_stats mem prog
          | None -> Sem.kernel_stats (Sem.memory_of_program prog) prog
        in
        tot_chains := !tot_chains + f_chains;
        tot_fops := !tot_fops + f_ops;
        tot_kraw := !tot_kraw + k_raw;
        tot_kcomp := !tot_kcomp + k_compiled;
        tot_kfused := !tot_kfused + k_fused;
        guard_worst := Float.max !guard_worst prep_t_w;
        let speedup = if prep_s > 0. then seed_s /. prep_s else 0. in
        let alloc_ratio = if prep_w > 0. then seed_w /. prep_w else infinity in
        let name = Plan.collective_name collective in
        Util.row "  %-15s %10.2f ms %10.2f ms %5.1fx %12.0f w %12.0f w %7.0fx\n"
          name (seed_s *. 1e3) (prep_s *. 1e3) speedup seed_w prep_w
          alloc_ratio;
        let row =
          Json.Obj
            [
              ("collective", Json.str name);
              ("simulated_makespan_s", Json.float sim_s);
              ("seed_wall_s", Json.float seed_s);
              ("prepared_wall_s", Json.float prep_s);
              ("wall_speedup", Json.float speedup);
              ("seed_minor_words", Json.float seed_w);
              ("prepared_minor_words", Json.float prep_w);
              ("alloc_ratio", Json.float alloc_ratio);
              ("seed_timing_wall_s", Json.float seed_t_s);
              ("prepared_timing_wall_s", Json.float prep_t_s);
              ("seed_timing_minor_words", Json.float seed_t_w);
              ("prepared_timing_minor_words", Json.float prep_t_w);
              ("fusion_enabled", Json.Bool fusion_on);
              ("fused_chains", Json.int f_chains);
              ("fused_ops", Json.int f_ops);
              ("kernels_raw", Json.int k_raw);
              ("kernels_compiled", Json.int k_compiled);
              ("kernels_fused", Json.int k_fused);
            ]
        in
        let headline =
          if collective = Plan.All_reduce then Some (speedup, alloc_ratio)
          else headline
        in
        (row :: rows, headline))
      ([], None) collectives
  in
  let rows = List.rev rows in
  let hl_speedup, hl_alloc =
    match headline with Some h -> h | None -> (0., 0.)
  in
  Util.row "  headline (all_reduce): %.1fx wall, %.0fx fewer minor words\n"
    hl_speedup hl_alloc;
  let guard_ok = !guard_worst <= alloc_guard_minor_words in
  Util.row "  alloc guard: worst timing-only execute %.0f minor words/run \
            (budget %.0f) — %s\n"
    !guard_worst alloc_guard_minor_words
    (if guard_ok then "OK" else "FAIL");
  let tel = Blink.telemetry handle in
  let counter name = Blink_telemetry.Telemetry.counter_value tel name in
  Util.row "  engine.prepares %d vs engine.runs %d (schedules are \
            lowered once, replayed thereafter)\n"
    (counter "engine.prepares") (counter "engine.runs");
  Util.row "  fusion: %d chains covering %d ops; kernel tables %d raw -> \
            %d compiled (%d fused) across the six plans\n"
    !tot_chains !tot_fops !tot_kraw !tot_kcomp !tot_kfused;
  Util.write_bench_json ~file:"BENCH_replay.json" ~suite:"replay"
    [
      ("iters", Json.int iters);
      ("elems", Json.int elems);
      ("headline_wall_speedup", Json.float hl_speedup);
      ("headline_alloc_ratio", Json.float hl_alloc);
      ("alloc_guard_minor_words", Json.float alloc_guard_minor_words);
      ("alloc_guard_worst", Json.float !guard_worst);
      ("alloc_guard_ok", Json.Bool guard_ok);
      ("engine_prepares", Json.int (counter "engine.prepares"));
      ("engine_runs", Json.int (counter "engine.runs"));
      ("collectives", Json.List rows);
    ];
  if not guard_ok then (
    Printf.eprintf
      "replay: allocation guard failed (%.0f > %.0f minor words/run)\n"
      !guard_worst alloc_guard_minor_words;
    exit 1)

(* ------------------------------------------------------------------ *)
(* Kernel microbench: GB/s of each C stub entry point on large slabs,
   plus the dispatch-cost comparison of one fused copy_add call against
   the separate copy-then-reduce pair it replaces, at pipeline-chunk
   granularity. Throughputs are host-dependent (the gate ignores them);
   the benchmarked shapes are exact. *)

let kernels_suite () =
  Util.heading "Kernels: C stub throughput and fused vs unfused dispatch";
  let elems = 4_194_304 in
  let make () =
    Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout elems
  in
  let a = make () and b = make () and c = make () in
  Bigarray.Array1.fill a 1.5;
  Bigarray.Array1.fill b 0.25;
  Bigarray.Array1.fill c 0.0;
  let f64 = Array.init elems (fun i -> Float.of_int (i land 255)) in
  let iters = 40 in
  let bench name bytes_per_elem f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = (Unix.gettimeofday () -. t0) /. Float.of_int iters in
    let gbps = Float.of_int elems *. bytes_per_elem /. dt /. 1e9 in
    Util.row "  %-10s %8.2f GB/s  (%.3f ms per %d-elem call)\n" name gbps
      (dt *. 1e3) elems;
    (name, dt, gbps)
  in
  (* Bytes moved per element: copy touches 8 (read + write), reduce 12
     (read both + write), copy_add 16, of_f64 12 (8 in, 4 out). Bound
     sequentially: list elements evaluate right-to-left. *)
  let k_copy = bench "copy" 8. (fun () -> Sem.Kernels.copy b 0 a 0 elems) in
  let k_reduce =
    bench "reduce" 12. (fun () -> Sem.Kernels.reduce c 0 a 0 elems)
  in
  let k_copy_add =
    bench "copy_add" 16. (fun () -> Sem.Kernels.copy_add b 0 c 0 a 0 elems)
  in
  let k_of_f64 =
    bench "of_f64" 12. (fun () -> Sem.Kernels.of_f64 a 0 f64 elems)
  in
  let ks = [ k_copy; k_reduce; k_copy_add; k_of_f64 ] in
  (* Dispatch cost at pipeline-chunk granularity: the fused entry makes
     one call (and one pass over src) where the unfused path makes two. *)
  let chunk = 4_096 in
  let calls = elems / chunk in
  let per_call f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. Float.of_int (iters * calls) *. 1e9
  in
  let fused_ns =
    per_call (fun () ->
        for i = 0 to calls - 1 do
          let off = i * chunk in
          Sem.Kernels.copy_add b off c off a off chunk
        done)
  in
  let unfused_ns =
    per_call (fun () ->
        for i = 0 to calls - 1 do
          let off = i * chunk in
          Sem.Kernels.copy b off a off chunk;
          Sem.Kernels.reduce c off a off chunk
        done)
  in
  let ratio = unfused_ns /. Float.max 1e-9 fused_ns in
  Util.row
    "  dispatch (%d-elem chunks): fused copy_add %.0f ns/call, separate \
     copy+reduce %.0f ns (%.2fx)\n"
    chunk fused_ns unfused_ns ratio;
  Util.write_bench_json ~file:"BENCH_kernels.json" ~suite:"kernels"
    [
      ("elems", Json.int elems);
      ("iters", Json.int iters);
      ( "kernels",
        Json.List
          (List.map
             (fun (name, dt, gbps) ->
               Json.Obj
                 [
                   ("kernel", Json.str name);
                   ("elems", Json.int elems);
                   ("wall_s", Json.float dt);
                   ("gbps", Json.float gbps);
                 ])
             ks) );
      ( "fused_dispatch",
        Json.Obj
          [
            ("chunk_elems", Json.int chunk);
            ("calls", Json.int calls);
            ("fused_ns_per_call", Json.float fused_ns);
            ("unfused_ns_per_call", Json.float unfused_ns);
            ("unfused_over_fused", Json.float ratio);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Failover mode: fault injection and degraded-topology replanning.

   Healthy-handle baseline, then a link loss and a link degradation
   reported mid-life: wall-clock replan latency around each mutation,
   cache-invalidation counters, degraded packing rate versus a fresh
   handle created directly on the degraded fabric (must match exactly),
   a mid-run flaky-link simulation through Fault.run, and the typed
   partition error on an allocation whose cut link is a bridge. *)

module Tree = Blink_collectives.Tree
module Program = Blink_sim.Program
module Fault = Blink_sim.Fault

let used_pairs (p : Plan.t) ~gpus =
  List.concat_map
    (fun { Tree.tree; _ } ->
      Array.to_list (Array.mapi (fun r pr -> (r, pr)) tree.Tree.parent))
    p.Plan.trees
  |> List.filter_map (fun (r, pr) ->
         if pr >= 0 then
           Some (min gpus.(r) gpus.(pr), max gpus.(r) gpus.(pr))
         else None)
  |> List.sort_uniq compare

let failover_suite () =
  let gpus = Array.init 8 Fun.id in
  let elems = 1_000_000 in
  Util.heading
    "Failover: link fault injection + replanning, %d elems on dgx1v 8 gpus"
    elems;
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (Unix.gettimeofday () -. t0, x)
  in
  let handle = Blink.create Server.dgx1v ~gpus in
  let healthy_rate = Blink.all_reduce_rate handle in
  let plan0 = Blink.plan handle Plan.All_reduce ~elems in
  let healthy_s = Plan.seconds (Plan.execute ~data:false plan0) in
  Util.row "  healthy: %.1f GB/s packing rate, %.3f ms simulated all_reduce\n"
    healthy_rate (healthy_s *. 1e3);
  (* Fail an NVLink the cached plan routes over; the mutation replans the
     fabric and invalidates exactly the touching cache keys. *)
  let u, v = List.hd (used_pairs plan0 ~gpus) in
  let t_fail, () = wall (fun () -> Blink.fail_link ~replan:`Cold handle ~u ~v) in
  let t_replan, plan1 =
    wall (fun () -> Blink.plan handle Plan.All_reduce ~elems)
  in
  let degraded_rate = Blink.all_reduce_rate handle in
  let degraded_s = Plan.seconds (Plan.execute ~data:false plan1) in
  Util.row "  fail_link %d-%d: topology replan %.1f ms, key re-plan %.1f ms\n"
    u v (t_fail *. 1e3) (t_replan *. 1e3);
  Util.row "  degraded: %.1f GB/s packing rate, %.3f ms simulated all_reduce \
            (%.1f%% of healthy)\n"
    degraded_rate (degraded_s *. 1e3)
    (100. *. healthy_s /. degraded_s);
  (* A fresh handle created directly on the degraded fabric must agree
     bit-for-bit — the replanned handle holds no stale state. *)
  let fresh =
    Blink.create ~link_faults:[ ((u, v), Server.Down) ] Server.dgx1v ~gpus
  in
  let fresh_s =
    Plan.seconds
      (Plan.execute ~data:false (Blink.plan fresh Plan.All_reduce ~elems))
  in
  let fresh_matches =
    Blink.all_reduce_rate fresh = degraded_rate && fresh_s = degraded_s
  in
  Util.row "  fresh handle on degraded fabric: %.1f GB/s, %.3f ms — %s\n"
    (Blink.all_reduce_rate fresh)
    (fresh_s *. 1e3)
    (if fresh_matches then "matches replanned handle exactly"
     else "MISMATCH vs replanned handle");
  (* Degrade a second link to half rate on top of the loss. *)
  let u2, v2 = List.hd (used_pairs plan1 ~gpus) in
  let t_degrade, () =
    wall (fun () ->
        Blink.degrade_link ~replan:`Cold handle ~u:u2 ~v:v2 ~factor:0.5)
  in
  let twice_rate = Blink.all_reduce_rate handle in
  Util.row "  degrade_link %d-%d to 50%%: replan %.1f ms, %.1f GB/s\n" u2 v2
    (t_degrade *. 1e3) twice_rate;
  (* Incremental replanning: the same fault sequence on a handle that
     keeps surviving trees and re-packs only the displaced flow (warm),
     and on a handle whose one-link-down plan was prewarmed as a
     background contingency (failover = a fingerprint swap). *)
  let warm = Blink.create Server.dgx1v ~gpus in
  ignore (Blink.plan warm Plan.All_reduce ~elems);
  let t_warm_fail, () = wall (fun () -> Blink.fail_link warm ~u ~v) in
  let warm_rate = Blink.all_reduce_rate warm in
  ignore (Blink.plan warm Plan.All_reduce ~elems);
  let t_warm_degrade, () =
    wall (fun () -> Blink.degrade_link warm ~u:u2 ~v:v2 ~factor:0.5)
  in
  let warm_rate_equals_cold = warm_rate = degraded_rate in
  Util.row
    "  warm replan: fail %.1f ms (%.1fx vs cold), degrade %.1f ms (%.1fx), \
     %.1f GB/s%s\n"
    (t_warm_fail *. 1e3)
    (t_fail /. t_warm_fail)
    (t_warm_degrade *. 1e3)
    (t_degrade /. t_warm_degrade)
    warm_rate
    (if warm_rate_equals_cold then " (= cold rate)" else "");
  let cont = Blink.create Server.dgx1v ~gpus in
  ignore (Blink.plan cont Plan.All_reduce ~elems);
  let t_prewarm, prewarmed =
    wall (fun () ->
        Blink.prewarm ~contingencies:(`Pairs [ (u, v) ]) cont
          [ (Plan.All_reduce, elems) ])
  in
  let t_cont, () = wall (fun () -> Blink.fail_link cont ~u ~v) in
  let cont_plan = Blink.plan cont Plan.All_reduce ~elems in
  let cont_rate = Blink.all_reduce_rate cont in
  let cont_s = Plan.seconds (Plan.execute ~data:false cont_plan) in
  let contingency_matches = cont_rate = degraded_rate && cont_s = degraded_s in
  let cont_hits =
    Blink_telemetry.Telemetry.counter_value (Blink.telemetry cont)
      "plan.contingency.hits"
  in
  Util.row
    "  contingency: prewarm %.1f ms (%d plans), failover %.2f ms, %.1f GB/s \
     — %s\n"
    (t_prewarm *. 1e3) prewarmed (t_cont *. 1e3) cont_rate
    (if contingency_matches then "matches the cold replan exactly"
     else "MISMATCH vs cold replan");
  let tel = Blink.telemetry handle in
  let counter name = Blink_telemetry.Telemetry.counter_value tel name in
  Util.row "  counters: fault.injected %d, plan.cache.invalidations %d\n"
    (counter "fault.injected")
    (counter "plan.cache.invalidations");
  (* Mid-run fault model: replay the healthy compiled plan with a flaky
     window on its first transfer link — ops retry with backoff and the
     run completes late instead of wedging. *)
  let link = ref (-1) in
  Program.iter_ops
    (fun o ->
      match o.Program.kind with
      | Program.Transfer { link = l; _ } when !link < 0 -> link := l
      | _ -> ())
    plan0.Plan.program;
  let clean = Fault.run ~resources:plan0.Plan.resources plan0.Plan.program in
  let clean_s = clean.Fault.timing.E.makespan in
  let flaky =
    Fault.run ~resources:plan0.Plan.resources
      ~events:[ Fault.Flaky { res = !link; from_s = 0.; until_s = clean_s /. 2. } ]
      plan0.Plan.program
  in
  Util.row "  mid-run flaky link %d: %d retries over %d faulted ops, %.3f ms \
            -> %.3f ms\n"
    !link flaky.Fault.retries flaky.Fault.faulted_ops (clean_s *. 1e3)
    (flaky.Fault.timing.E.makespan *. 1e3);
  (* Partition detection: within {1,4,5,6} the (1,5) NVLink is gpu 1's
     only edge, so failing it must raise the typed error, not replan. *)
  let island = Blink.create ~root:2 Server.dgx1v ~gpus:[| 1; 4; 5; 6 |] in
  let partition =
    match Blink.fail_link island ~u:1 ~v:5 with
    | () -> None
    | exception Blink.Partitioned { alive; unreachable } ->
        Util.row
          "  partition on {1,4,5,6} - link 1-5: alive {%s}, unreachable {%s}\n"
          (String.concat "," (List.map string_of_int alive))
          (String.concat "," (List.map string_of_int unreachable));
        Some (alive, unreachable)
  in
  if partition = None then
    Util.row "  partition on {1,4,5,6} - link 1-5: NOT DETECTED (bug)\n";
  Util.write_bench_json ~file:"BENCH_failover.json" ~suite:"failover"
    [
            ("elems", Json.int elems);
            ("healthy_rate_gbps", Json.float healthy_rate);
            ("healthy_all_reduce_s", Json.float healthy_s);
            ("failed_link", Json.List [ Json.int u; Json.int v ]);
            ("topology_replan_s", Json.float t_fail);
            ("key_replan_s", Json.float t_replan);
            ("degraded_rate_gbps", Json.float degraded_rate);
            ("degraded_all_reduce_s", Json.float degraded_s);
            ("fresh_handle_rate_gbps", Json.float (Blink.all_reduce_rate fresh));
            ("fresh_handle_all_reduce_s", Json.float fresh_s);
            ("fresh_matches_replanned", Json.Bool fresh_matches);
            ("degraded_link", Json.List [ Json.int u2; Json.int v2 ]);
            ("degrade_replan_s", Json.float t_degrade);
            ("double_fault_rate_gbps", Json.float twice_rate);
            ("warm_replan_s", Json.float t_warm_fail);
            ("warm_degrade_replan_s", Json.float t_warm_degrade);
            ("warm_rate_gbps", Json.float warm_rate);
            ("warm_rate_equals_cold", Json.Bool warm_rate_equals_cold);
            ("replan_speedup_vs_cold", Json.float (t_fail /. t_warm_fail));
            ("contingency_prewarm_s", Json.float t_prewarm);
            ("contingency_prewarmed_plans", Json.int prewarmed);
            ("contingency_replan_s", Json.float t_cont);
            ("contingency_rate_gbps", Json.float cont_rate);
            ("contingency_matches_cold", Json.Bool contingency_matches);
            ("contingency_hits", Json.int cont_hits);
            ("faults_injected", Json.int (counter "fault.injected"));
            ( "plan_cache_invalidations",
              Json.int (counter "plan.cache.invalidations") );
            ("midrun_retries", Json.int flaky.Fault.retries);
            ("midrun_faulted_ops", Json.int flaky.Fault.faulted_ops);
            ("midrun_clean_s", Json.float clean_s);
            ("midrun_flaky_s", Json.float flaky.Fault.timing.E.makespan);
            ( "partition_detected",
              Json.Bool (Option.is_some partition) );
            ( "partition_alive",
              Json.List
                (match partition with
                | Some (alive, _) -> List.map Json.int alive
                | None -> []) );
            ( "partition_unreachable",
              Json.List
                (match partition with
                | Some (_, unreachable) -> List.map Json.int unreachable
                | None -> []) );
    ];
  if not fresh_matches then (
    Printf.eprintf
      "failover: replanned handle diverges from a fresh handle on the \
       degraded fabric\n";
    exit 1);
  if partition = None then (
    Printf.eprintf "failover: partition was not detected\n";
    exit 1);
  (* Hard latency gates for the incremental-replanning paths: a warm
     replan must land within 10x of a plan-cache re-plan, a contingency
     failover within 2x — and the contingency plan must be the cold plan
     (it was built cold, ahead of time, under the post-fault key). *)
  if t_warm_fail > 10. *. t_replan then (
    Printf.eprintf
      "failover: warm replan %.3f ms exceeds 10x key re-plan %.3f ms\n"
      (t_warm_fail *. 1e3) (t_replan *. 1e3);
    exit 1);
  if t_cont > 2. *. t_replan then (
    Printf.eprintf
      "failover: contingency failover %.3f ms exceeds 2x key re-plan %.3f \
       ms\n"
      (t_cont *. 1e3) (t_replan *. 1e3);
    exit 1);
  if not contingency_matches then (
    Printf.eprintf
      "failover: contingency plan diverges from the cold replan\n";
    exit 1)

(* ------------------------------------------------------------------ *)
(* Cluster service: the shared fingerprint-keyed plan store under a
   multi-tenant churn trace — the paper's 40,000-jobs-to-46-topologies
   observation as a sustained-throughput benchmark. CI runs this as a
   smoke: the exit-1 guards hold the acceptance floor (>= 95%% cross-job
   hit rate, <= 50 unique fingerprints, zero bit-identity mismatches). *)

module Scheduler = Blink_cluster.Scheduler

let cluster_suite () =
  let n_jobs = 2_000 and servers = 64 in
  Util.heading
    "Cluster service: %d jobs on %d dgx1v servers, shared plan store" n_jobs
    servers;
  let r =
    Scheduler.run_service ~servers ~verify_every:50 ~failover_drill:true
      ~n_jobs ()
  in
  let st = r.Scheduler.store in
  Util.row "  jobs: %d admitted, %d rejected (capacity), %d rejected (quota)\n"
    r.Scheduler.admitted_jobs r.Scheduler.rejected_capacity_jobs
    r.Scheduler.rejected_quota_jobs;
  Util.row "  slices: %d planned, %d single-gpu, %d pcie-only\n"
    r.Scheduler.planned_slices r.Scheduler.single_gpu_slices
    r.Scheduler.pcie_slices;
  Util.row "  store: %d hits / %d misses (%.1f%% hit rate), %d fingerprints, \
            %d live plans\n"
    st.Blink_store.Store.hits st.Blink_store.Store.misses
    (100. *. r.Scheduler.hit_rate)
    r.Scheduler.unique_fingerprints st.Blink_store.Store.entries;
  Util.row "  throughput: %.0f jobs/s (%.2f s wall), fairness %.3f\n"
    r.Scheduler.jobs_per_second r.Scheduler.wall_seconds r.Scheduler.fairness;
  Util.row "  verification: %d sampled slices, %d mismatches\n"
    r.Scheduler.verified_slices r.Scheduler.verify_mismatches;
  (* Observatory: the per-tenant / per-fingerprint health view the
     service snapshot exports. *)
  Util.row "  observatory: %-6s %5s %18s %18s %10s\n" "tenant" "jobs"
    "latency mean/p95" "queue mean/p95" "stragglers";
  List.iter
    (fun (o : Scheduler.tenant_observatory) ->
      Util.row "               %-6d %5d %8.2f/%5.2f ms %9.2f/%5.2f ms %10d\n"
        o.Scheduler.ob_tenant o.Scheduler.ob_jobs
        (o.Scheduler.ob_latency.Scheduler.h_mean_s *. 1e3)
        (o.Scheduler.ob_latency.Scheduler.h_p95_s *. 1e3)
        (o.Scheduler.ob_queue_wait.Scheduler.h_mean_s *. 1e3)
        (o.Scheduler.ob_queue_wait.Scheduler.h_p95_s *. 1e3)
        o.Scheduler.ob_straggler_slices)
    r.Scheduler.observatory;
  List.iteri
    (fun i (c : Scheduler.fingerprint_class) ->
      if i < 5 then
        Util.row "  class %-22s %5d slices, %6.1f GB/s mean (best %.1f), \
                  %d stragglers\n"
          c.Scheduler.fc_class c.Scheduler.fc_slices c.Scheduler.fc_mean_gbps
          c.Scheduler.fc_best_gbps c.Scheduler.fc_stragglers)
    r.Scheduler.classes;
  Util.row "  stragglers: %d flagged slices (epsilon %.2f) on the healthy run\n"
    r.Scheduler.straggler_slices r.Scheduler.straggler_epsilon;
  (match r.Scheduler.drill with
  | None -> Util.row "  failover drill: skipped (no point-to-point NVLinks)\n"
  | Some d ->
      let u, v = d.Scheduler.dr_link in
      Util.row
        "  failover drill (link %d-%d): cold %.1f ms, warm %.1f ms, \
         contingency %.2f ms (prewarm %.1f ms, %d plans)\n"
        u v
        (d.Scheduler.dr_cold_replan_s *. 1e3)
        (d.Scheduler.dr_warm_replan_s *. 1e3)
        (d.Scheduler.dr_contingency_replan_s *. 1e3)
        (d.Scheduler.dr_prewarm_s *. 1e3)
        d.Scheduler.dr_prewarmed_plans);
  (* Straggler injection: tenant 3 runs every slice 2x slow; the
     observatory must flag it and the flags must concentrate there. *)
  let straggler_tenant = 3 in
  let rs =
    Scheduler.run_service ~servers:16 ~n_jobs:400
      ~straggler:(straggler_tenant, 2.0) ()
  in
  let injected_flagged = rs.Scheduler.straggler_slices in
  let flagged_on_tenant =
    List.length
      (List.filter
         (fun (s : Scheduler.straggler) ->
           s.Scheduler.st_tenant = straggler_tenant)
         rs.Scheduler.stragglers)
  in
  Util.row "  injected straggler (tenant %d, 2.0x): %d flagged slices, %d on \
            the injected tenant\n"
    straggler_tenant injected_flagged flagged_on_tenant;
  let tenant_obj (o : Scheduler.tenant_observatory) =
    let summary (h : Scheduler.histogram_summary) =
      Json.Obj
        [
          ("count", Json.int h.Scheduler.h_count);
          ("mean_s", Json.float h.Scheduler.h_mean_s);
          ("p95_s", Json.float h.Scheduler.h_p95_s);
          ("max_s", Json.float h.Scheduler.h_max_s);
        ]
    in
    Json.Obj
      [
        ("tenant", Json.int o.Scheduler.ob_tenant);
        ("jobs", Json.int o.Scheduler.ob_jobs);
        ("latency", summary o.Scheduler.ob_latency);
        ("queue_wait", summary o.Scheduler.ob_queue_wait);
        ("straggler_slices", Json.int o.Scheduler.ob_straggler_slices);
      ]
  in
  let class_obj (c : Scheduler.fingerprint_class) =
    Json.Obj
      [
        ("class", Json.str c.Scheduler.fc_class);
        ("slices", Json.int c.Scheduler.fc_slices);
        ("mean_gbps", Json.float c.Scheduler.fc_mean_gbps);
        ("best_gbps", Json.float c.Scheduler.fc_best_gbps);
        ("worst_gbps", Json.float c.Scheduler.fc_worst_gbps);
        ("stragglers", Json.int c.Scheduler.fc_stragglers);
      ]
  in
  Util.write_bench_json ~file:"BENCH_cluster.json" ~suite:"cluster"
    [
            ("jobs", Json.int r.Scheduler.jobs);
            ("servers", Json.int servers);
            ("admitted_jobs", Json.int r.Scheduler.admitted_jobs);
            ( "rejected_capacity_jobs",
              Json.int r.Scheduler.rejected_capacity_jobs );
            ("rejected_quota_jobs", Json.int r.Scheduler.rejected_quota_jobs);
            ("planned_slices", Json.int r.Scheduler.planned_slices);
            ("single_gpu_slices", Json.int r.Scheduler.single_gpu_slices);
            ("pcie_slices", Json.int r.Scheduler.pcie_slices);
            ("store_hits", Json.int st.Blink_store.Store.hits);
            ("store_misses", Json.int st.Blink_store.Store.misses);
            ("store_entries", Json.int st.Blink_store.Store.entries);
            ("hit_rate", Json.float r.Scheduler.hit_rate);
            ( "unique_fingerprints",
              Json.int r.Scheduler.unique_fingerprints );
            ("jobs_per_second", Json.float r.Scheduler.jobs_per_second);
            ("wall_seconds", Json.float r.Scheduler.wall_seconds);
            ("fairness", Json.float r.Scheduler.fairness);
            ("verified_slices", Json.int r.Scheduler.verified_slices);
            ("verify_mismatches", Json.int r.Scheduler.verify_mismatches);
            ("straggler_epsilon", Json.float r.Scheduler.straggler_epsilon);
            ("straggler_slices", Json.int r.Scheduler.straggler_slices);
            ( "observatory",
              Json.List (List.map tenant_obj r.Scheduler.observatory) );
            ("classes", Json.List (List.map class_obj r.Scheduler.classes));
            ("injected_straggler_tenant", Json.int straggler_tenant);
            ("injected_straggler_factor", Json.float 2.0);
            ("injected_straggler_slices", Json.int injected_flagged);
            ("injected_flags_on_tenant", Json.int flagged_on_tenant);
            ( "failover_drill",
              match r.Scheduler.drill with
              | None -> Json.Bool false
              | Some d ->
                  let u, v = d.Scheduler.dr_link in
                  Json.Obj
                    [
                      ("link", Json.List [ Json.int u; Json.int v ]);
                      ("prewarm_s", Json.float d.Scheduler.dr_prewarm_s);
                      ( "prewarmed_plans",
                        Json.int d.Scheduler.dr_prewarmed_plans );
                      ("cold_replan_s", Json.float d.Scheduler.dr_cold_replan_s);
                      ("warm_replan_s", Json.float d.Scheduler.dr_warm_replan_s);
                      ( "contingency_replan_s",
                        Json.float d.Scheduler.dr_contingency_replan_s );
                      ( "warm_rate_equals_cold",
                        Json.Bool d.Scheduler.dr_warm_rate_equals_cold );
                      ( "contingency_rate_equals_cold",
                        Json.Bool d.Scheduler.dr_contingency_rate_equals_cold );
                    ] );
    ];
  if r.Scheduler.hit_rate < 0.95 then (
    Printf.eprintf "cluster: cross-job hit rate %.3f below 0.95 floor\n"
      r.Scheduler.hit_rate;
    exit 1);
  if r.Scheduler.unique_fingerprints > 50 then (
    Printf.eprintf "cluster: %d unique fingerprints exceeds the 50 ceiling\n"
      r.Scheduler.unique_fingerprints;
    exit 1);
  if r.Scheduler.verify_mismatches > 0 then (
    Printf.eprintf
      "cluster: %d shared plans diverged from fresh isolated handles\n"
      r.Scheduler.verify_mismatches;
    exit 1);
  if r.Scheduler.straggler_slices > 0 then (
    Printf.eprintf
      "cluster: %d straggler slices flagged on the healthy run (rates of a \
       class should be bit-identical)\n"
      r.Scheduler.straggler_slices;
    exit 1);
  if injected_flagged = 0 then (
    Printf.eprintf "cluster: injected straggler was not flagged\n";
    exit 1);
  if flagged_on_tenant <> injected_flagged then (
    Printf.eprintf
      "cluster: %d of %d straggler flags landed off the injected tenant\n"
      (injected_flagged - flagged_on_tenant)
      injected_flagged;
    exit 1)

(* ------------------------------------------------------------------ *)
(* Analyze mode: critical-path attribution and achieved-vs-bound rate
   for the six collectives on the DGX-1V, plus the planner phase
   breakdown — the numbers behind the EXPERIMENTS.md analysis table.
   Everything here is simulator output, so it is bit-reproducible and
   prime material for the regression gate. *)

module Analysis = Blink_core.Analysis

let analyze_suite () =
  let mbytes = 500. in
  let elems = Util.elems_of_mb mbytes in
  Util.heading
    "Analyze: critical path vs edge-cut bound, %.0f MB on dgx1v 8 gpus" mbytes;
  let handle = Blink.create Server.dgx1v ~gpus:(Array.init 8 Fun.id) in
  let collectives =
    Plan.
      [ All_reduce; Broadcast; Reduce; Gather; All_gather; Reduce_scatter ]
  in
  Util.row "  %-15s %11s %10s %10s %6s  %s\n" "collective" "makespan"
    "achieved" "bound" "eff" "bottleneck";
  let reports =
    List.map
      (fun collective ->
        let r = Analysis.analyze handle collective ~elems in
        let bottleneck =
          match r.Analysis.bottlenecks with
          | [] -> "-"
          | ls ->
              String.concat ", "
                (List.filteri (fun i _ -> i < 2)
                   (List.map (fun l -> l.Analysis.li_label) ls))
              ^
              if List.length ls > 2 then
                Printf.sprintf " (+%d more)" (List.length ls - 2)
              else ""
        in
        Util.row "  %-15s %8.2f ms %6.1f GB/s %6.1f GB/s %5.1f%%  %s\n"
          (Plan.collective_name collective)
          (r.Analysis.makespan_s *. 1e3)
          r.Analysis.achieved_gbps r.Analysis.bound_gbps
          (100. *. r.Analysis.efficiency)
          bottleneck;
        r)
      collectives
  in
  let all_reduce = List.hd reports in
  Util.row "  all_reduce critical path: %d ops, transfer %.2f ms, compute \
            %.2f ms, delay %.2f ms, wait %.2f ms\n"
    all_reduce.Analysis.critical_ops
    (all_reduce.Analysis.transfer_s *. 1e3)
    (all_reduce.Analysis.compute_s *. 1e3)
    (all_reduce.Analysis.delay_s *. 1e3)
    (all_reduce.Analysis.wait_s *. 1e3);
  let phases = Analysis.phases handle in
  List.iter
    (fun (p : Analysis.phase) ->
      Util.row "  phase %-20s %4d calls %10.2f ms\n" p.Analysis.phase
        p.Analysis.calls
        (p.Analysis.total_s *. 1e3))
    phases;
  Util.write_bench_json ~file:"BENCH_analyze.json" ~suite:"analyze"
    [
      ("mbytes", Json.float mbytes);
      ("elems", Json.int elems);
      ("collectives", Json.List (List.map Analysis.report_json reports));
      ("phases", Analysis.phases_json phases);
    ];
  if all_reduce.Analysis.efficiency < 0.95 then (
    Printf.eprintf
      "analyze: all_reduce achieved %.1f GB/s, below 95%% of the %.1f GB/s \
       edge-cut bound\n"
      all_reduce.Analysis.achieved_gbps all_reduce.Analysis.bound_gbps;
    exit 1);
  if List.length phases < 3 then (
    Printf.eprintf "analyze: only %d planner phase timers fired (expected >= 3)\n"
      (List.length phases);
    exit 1)

(* ------------------------------------------------------------------ *)
(* Planner-backend tournament: every registered backend plans the same
   fabrics; the DES times the resulting AllReduce/Broadcast schedules and
   a differential check holds each backend to Treegen.feasible plus
   bit-equality against the reference semantics. Two gates (after the
   artifact is written): every backend must pass the differential check,
   and TreeGen must stay within 5% of the best backend's achieved
   AllReduce rate on the DGX-1 topologies — the tournament doubles as a
   guard on TreeGen's optimality claims. Not part of the regress
   baselines: planning wall-clock is host-dependent. *)

module Planner = Blink_core.Planner

(* The closeness gate covers the healthy DGX-1 fabrics. The degraded
   fabric is measured and differentially checked but not gated: there
   LP-flow's column generation legitimately beats TreeGen's MWU+ILP by
   ~6% achieved AllReduce (the fault breaks the symmetry MWU exploits) —
   exactly the kind of planner gap the tournament exists to surface. *)
let tournament_topologies =
  [
    ("dgx1v-8", Server.dgx1v, Array.init 8 Fun.id, [], `Gated);
    ("dgx1p-8", Server.dgx1p, Array.init 8 Fun.id, [], `Gated);
    ("dgx1v-quad", Server.dgx1v, [| 1; 4; 5; 6 |], [], `Gated);
    ( "dgx1v-8-degraded",
      Server.dgx1v,
      Array.init 8 Fun.id,
      [ ((2, 3), Server.Down) ],
      `Ungated );
  ]

(* Element-exact AllReduce differential: slab semantics vs the float-array
   reference, over every buffer of the compiled program. *)
let tournament_data_correct handle =
  let elems = 2_048 in
  let plan = Blink.plan ~chunk_elems:512 handle Plan.All_reduce ~elems in
  let prog = plan.Plan.program in
  let layout = plan.Plan.layout in
  let k = Array.length layout.Codegen.data in
  let mem = Sem.memory_of_program prog in
  let rmem = Sem.Ref.memory_of_program prog in
  for r = 0 to k - 1 do
    let values =
      Array.init elems (fun i -> Float.of_int (((i * 3) + (r * 7)) mod 11))
    in
    Sem.write mem ~node:r ~buf:layout.Codegen.data.(r) values;
    Sem.Ref.write rmem ~node:r ~buf:layout.Codegen.data.(r) values
  done;
  Sem.run prog mem;
  Sem.Ref.run prog rmem;
  List.for_all
    (fun (node, buf, _len) ->
      Sem.Ref.read rmem ~node ~buf = Sem.read mem ~node ~buf)
    (Program.buffers prog)

let tournament_suite () =
  let mbytes = 100. in
  let backends = Planner.all () in
  Util.heading "Tournament: %d planner backends x %d topologies, %.0f MB"
    (List.length backends)
    (List.length tournament_topologies)
    mbytes;
  let packing_fields prefix g = function
    | None -> [ (prefix ^ "_trees", Json.Null); (prefix ^ "_rate", Json.Null) ]
    | Some (p : Treegen.packing) ->
        [
          (prefix ^ "_trees", Json.int (List.length p.Treegen.trees));
          (prefix ^ "_rate", Json.float p.Treegen.rate);
          (prefix ^ "_optimal", Json.float p.Treegen.optimal);
          (prefix ^ "_feasible", Json.Bool (Treegen.feasible g p));
        ]
  in
  let results =
    List.map
      (fun (topo, server, gpus, faults, gated) ->
        Util.row "  %-17s %-11s %8s %8s %6s %6s %9s %5s %5s\n" topo "backend"
          "bcast" "allred" "btrees" "atrees" "plan-ms" "feas" "data";
        let rows =
          List.map
            (fun b ->
              let t0 = Unix.gettimeofday () in
              let handle =
                match faults with
                | [] -> Blink.create ~planner:b server ~gpus
                | fs -> Blink.create ~planner:b ~link_faults:fs server ~gpus
              in
              let plan_s = Unix.gettimeofday () -. t0 in
              let g = Blink.graph handle in
              let directed = Blink.packing handle in
              let undirected = Blink.undirected_packing handle in
              let feasible =
                List.for_all
                  (function
                    | None -> false | Some p -> Treegen.feasible g p)
                  [ directed; undirected ]
              in
              let data_ok = tournament_data_correct handle in
              let bcast = Util.blink_broadcast ~mbytes handle in
              let allred = Util.blink_all_reduce ~mbytes handle in
              let trees = function
                | None -> 0
                | Some p -> List.length p.Treegen.trees
              in
              Util.row
                "  %-17s %-11s %6.1f %8.1f %6d %6d %9.1f %5b %5b\n" ""
                (Planner.name b) bcast allred (trees directed)
                (trees undirected) (plan_s *. 1e3) feasible data_ok;
              ( Planner.name b,
                Json.Obj
                  ([
                     ("backend", Json.str (Planner.name b));
                     ("plan_wall_s", Json.float plan_s);
                     ("broadcast_gbps", Json.float bcast);
                     ("all_reduce_gbps", Json.float allred);
                     ("feasible", Json.Bool feasible);
                     ("data_correct", Json.Bool data_ok);
                   ]
                  @ packing_fields "broadcast" g directed
                  @ packing_fields "all_reduce" g undirected),
                (feasible, data_ok, allred) ))
            backends
        in
        (topo, gated, rows))
      tournament_topologies
  in
  Util.write_bench_json ~file:"BENCH_tournament.json" ~suite:"tournament"
    [
      ("mbytes", Json.float mbytes);
      ( "topologies",
        Json.List
          (List.map
             (fun (topo, gated, rows) ->
               Json.Obj
                 [
                   ("name", Json.str topo);
                   ("gated", Json.Bool (gated = `Gated));
                   ( "backends",
                     Json.List (List.map (fun (_, json, _) -> json) rows) );
                 ])
             results) );
    ];
  (* Gate 1: the differential check holds for every backend everywhere. *)
  let bad =
    List.concat_map
      (fun (topo, _, rows) ->
        List.filter_map
          (fun (name, _, (feasible, data_ok, _)) ->
            if feasible && data_ok then None
            else Some (topo, name, feasible, data_ok))
          rows)
      results
  in
  List.iter
    (fun (topo, name, feasible, data_ok) ->
      Printf.eprintf
        "tournament: %s on %s failed the differential check (feasible=%b \
         data_correct=%b)\n"
        name topo feasible data_ok)
    bad;
  if bad <> [] then exit 1;
  (* Gate 2: TreeGen within 5% of the best backend's achieved AllReduce
     rate on every (DGX-1) topology. *)
  let laggards =
    List.filter_map
      (fun (topo, gated, rows) ->
        if gated <> `Gated then None
        else
        let rate name =
          List.find_map
            (fun (n, _, (_, _, r)) ->
              if String.equal n name then Some r else None)
            rows
        in
        match rate "treegen" with
        | None -> Some (topo, 0., 0.)
        | Some tg ->
            let best =
              List.fold_left
                (fun acc (_, _, (_, _, r)) -> Float.max acc r)
                0. rows
            in
            if tg < 0.95 *. best then Some (topo, tg, best) else None)
      results
  in
  List.iter
    (fun (topo, tg, best) ->
      Printf.eprintf
        "tournament: treegen achieved %.1f GB/s on %s, below 95%% of the \
         best backend's %.1f GB/s\n"
        tg topo best)
    laggards;
  if laggards <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* Regression gate: diff fresh BENCH_*.json in the cwd against the
   committed baselines in bench/baselines/. Only simulator-derived
   fields are compared — wall-clock and host-dependent numbers vary per
   machine and are deliberately unchecked. `regress-selftest` proves the
   gate has teeth by perturbing one fresh value in memory and requiring
   the comparator to flag it. *)

let baseline_dir = "bench/baselines"

type path_step = F of string | Row of string * string * string

type check_kind = Exact | Near of float

type check_spec = { suite : string; path : path_step list; kind : check_kind }

let path_string path =
  String.concat "."
    (List.map
       (function
         | F name -> name
         | Row (list_field, _, key) -> Printf.sprintf "%s[%s]" list_field key)
       path)

let rec resolve doc = function
  | [] -> Some doc
  | F name :: rest -> (
      match Json.member name doc with
      | Some d -> resolve d rest
      | None -> None)
  | Row (list_field, key_field, key) :: rest -> (
      match Json.member list_field doc with
      | Some l -> (
          match
            List.find_opt
              (fun item -> Json.member key_field item = Some (Json.Str key))
              (Json.to_list l)
          with
          | Some d -> resolve d rest
          | None -> None)
      | None -> None)

(* Rewrite the value at [path] (used by the selftest to inject a fake
   regression into an otherwise-clean document). *)
let rec perturb path f doc =
  match (path, doc) with
  | [], _ -> f doc
  | F name :: rest, Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = name then (k, perturb rest f v) else (k, v))
           fields)
  | Row (list_field, key_field, key) :: rest, Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if k = list_field then
               ( k,
                 Json.List
                   (List.map
                      (fun item ->
                        if Json.member key_field item = Some (Json.Str key)
                        then perturb rest f item
                        else item)
                      (Json.to_list v)) )
             else (k, v))
           fields)
  | _ -> doc

let six_collectives =
  [ "all_reduce"; "broadcast"; "reduce"; "gather"; "all_gather"; "reduce_scatter" ]

(* The curated deterministic surface of each suite. A missing field on
   either side is itself a failure: renames must update this table. *)
let check_specs =
  let near ?(tol = 1e-6) suite path = { suite; path; kind = Near tol } in
  let exact suite path = { suite; path; kind = Exact } in
  List.concat
    [
      List.map
        (fun suite -> exact suite [ F "schema_version" ])
        [
          "plan_cache"; "parallel_plan"; "replay"; "failover"; "cluster";
          "analyze"; "kernels"; "overlap";
        ];
      [
        exact "plan_cache" [ F "hits" ];
        exact "plan_cache" [ F "misses" ];
        near "plan_cache" [ F "hit_rate" ];
        exact "replay" [ F "engine_prepares" ];
        exact "replay" [ F "engine_runs" ];
        exact "replay" [ F "alloc_guard_ok" ];
      ];
      List.map
        (fun c ->
          near "replay"
            [ Row ("collectives", "collective", c); F "simulated_makespan_s" ])
        six_collectives;
      (* Fusion and kernel-table shape are pure functions of the
         program: any drift is a planner/compiler change, not noise. *)
      List.concat_map
        (fun c ->
          let row field = [ Row ("collectives", "collective", c); F field ] in
          [
            exact "replay" (row "fusion_enabled");
            exact "replay" (row "fused_chains");
            exact "replay" (row "fused_ops");
            exact "replay" (row "kernels_raw");
            exact "replay" (row "kernels_compiled");
            exact "replay" (row "kernels_fused");
          ])
        six_collectives;
      List.map
        (fun k -> exact "kernels" [ Row ("kernels", "kernel", k); F "elems" ])
        [ "copy"; "reduce"; "copy_add"; "of_f64" ];
      List.concat_map
        (fun c ->
          let row field = [ Row ("collectives", "collective", c); F field ] in
          [
            near "analyze" (row "makespan_s");
            near "analyze" (row "achieved_gbps");
            near "analyze" (row "bound_gbps");
            near "analyze" (row "efficiency");
          ])
        six_collectives;
      [
        near "failover" [ F "healthy_rate_gbps" ];
        near "failover" [ F "healthy_all_reduce_s" ];
        near "failover" [ F "degraded_rate_gbps" ];
        near "failover" [ F "degraded_all_reduce_s" ];
        near "failover" [ F "double_fault_rate_gbps" ];
        exact "failover" [ F "fresh_matches_replanned" ];
        exact "failover" [ F "faults_injected" ];
        exact "failover" [ F "plan_cache_invalidations" ];
        exact "failover" [ F "midrun_retries" ];
        exact "failover" [ F "midrun_faulted_ops" ];
        near "failover" [ F "midrun_clean_s" ];
        near "failover" [ F "midrun_flaky_s" ];
        exact "failover" [ F "partition_detected" ];
        near "failover" [ F "warm_rate_gbps" ];
        exact "failover" [ F "warm_rate_equals_cold" ];
        near "failover" [ F "contingency_rate_gbps" ];
        exact "failover" [ F "contingency_matches_cold" ];
        exact "failover" [ F "contingency_hits" ];
        exact "cluster" [ F "admitted_jobs" ];
        exact "cluster" [ F "rejected_capacity_jobs" ];
        exact "cluster" [ F "rejected_quota_jobs" ];
        exact "cluster" [ F "planned_slices" ];
        exact "cluster" [ F "single_gpu_slices" ];
        exact "cluster" [ F "pcie_slices" ];
        exact "cluster" [ F "store_hits" ];
        exact "cluster" [ F "store_misses" ];
        exact "cluster" [ F "unique_fingerprints" ];
        near "cluster" [ F "hit_rate" ];
        near "cluster" [ F "fairness" ];
        exact "cluster" [ F "verify_mismatches" ];
        exact "cluster" [ F "straggler_slices" ];
        exact "cluster" [ F "injected_straggler_slices" ];
        exact "cluster" [ F "injected_flags_on_tenant" ];
        exact "cluster" [ F "failover_drill"; F "warm_rate_equals_cold" ];
        exact "cluster"
          [ F "failover_drill"; F "contingency_rate_equals_cold" ];
      ];
    ]

let bench_file suite = Printf.sprintf "BENCH_%s.json" suite

let load_doc file =
  if not (Sys.file_exists file) then None
  else
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse_result s with
    | Ok doc -> Some doc
    | Error e ->
        Printf.eprintf "regress: %s does not parse: %s\n" file e;
        None

(* Compare one check; [None] means the whole suite is absent on the
   baseline side (skipped: new suites regress from their first commit). *)
let run_check ~baseline ~fresh spec =
  let b = resolve baseline spec.path and f = resolve fresh spec.path in
  let ok =
    match (spec.kind, b, f) with
    | _, None, _ | _, _, None -> false
    | Exact, Some b, Some f -> b = f
    | Near tol, Some b, Some f -> (
        match (Json.to_float b, Json.to_float f) with
        | Some b, Some f ->
            Float.abs (f -. b) <= tol *. Float.max 1e-12 (Float.abs b)
        | _ -> false)
  in
  let render = function
    | Some v -> Json.to_string v
    | None -> "missing"
  in
  ( ok,
    Json.Obj
      [
        ("suite", Json.str spec.suite);
        ("field", Json.str (path_string spec.path));
        ( "kind",
          Json.str
            (match spec.kind with
            | Exact -> "exact"
            | Near tol -> Printf.sprintf "near(%g)" tol) );
        ("baseline", Json.str (render b));
        ("fresh", Json.str (render f));
        ("ok", Json.Bool ok);
      ] )

(* [fresh_override] lets the selftest swap in a perturbed document. *)
let regress_run ?fresh_override () =
  Util.heading "Regression gate: fresh BENCH_*.json vs %s" baseline_dir;
  let suites =
    List.sort_uniq compare (List.map (fun s -> s.suite) check_specs)
  in
  let failures = ref 0 and skipped = ref [] and results = ref [] in
  List.iter
    (fun suite ->
      let specs = List.filter (fun s -> s.suite = suite) check_specs in
      let baseline =
        load_doc (Filename.concat baseline_dir (bench_file suite))
      in
      let fresh =
        match fresh_override with
        | Some f -> f suite
        | None -> load_doc (bench_file suite)
      in
      match (baseline, fresh) with
      | None, _ ->
          (* No committed baseline: report, don't fail — committing the
             baseline is how a new suite arms the gate. *)
          Util.row "  %-14s no baseline committed, skipped\n" suite;
          skipped := suite :: !skipped
      | Some _, None ->
          Util.row "  %-14s FRESH ARTIFACT MISSING (%s)\n" suite
            (bench_file suite);
          incr failures
      | Some baseline, Some fresh ->
          let bad = ref 0 in
          List.iter
            (fun spec ->
              let ok, obj = run_check ~baseline ~fresh spec in
              results := obj :: !results;
              if not ok then begin
                incr bad;
                incr failures;
                Util.row "  %-14s REGRESSION %s: baseline %s, fresh %s\n"
                  suite
                  (path_string spec.path)
                  (match resolve baseline spec.path with
                  | Some v -> Json.to_string v
                  | None -> "missing")
                  (match resolve fresh spec.path with
                  | Some v -> Json.to_string v
                  | None -> "missing")
              end)
            specs;
          Util.row "  %-14s %d checks, %d failed\n" suite (List.length specs)
            !bad)
    suites;
  Util.write_bench_json ~file:"BENCH_regress.json" ~suite:"regress"
    [
      ("failures", Json.int !failures);
      ("ok", Json.Bool (!failures = 0));
      ( "skipped_suites",
        Json.List (List.map Json.str (List.rev !skipped)) );
      ("checks", Json.List (List.rev !results));
    ];
  !failures

let regress_suite () =
  let failures = regress_run () in
  if failures > 0 then (
    Printf.eprintf "regress: %d deterministic checks failed\n" failures;
    exit 1);
  Util.row "  gate passed\n"

(* Selftest: perturb one deterministic fresh value (replay all_reduce
   simulated makespan x1.5) and require the comparator to flag it. *)
let regress_selftest () =
  let perturbed suite =
    match load_doc (bench_file suite) with
    | None -> None
    | Some doc when suite = "replay" ->
        Some
          (perturb
             [ Row ("collectives", "collective", "all_reduce");
               F "simulated_makespan_s" ]
             (function Json.Num x -> Json.Num (x *. 1.5) | v -> v)
             doc)
    | Some doc -> Some doc
  in
  let failures = regress_run ~fresh_override:perturbed () in
  if failures = 0 then (
    Printf.eprintf
      "regress-selftest: a 1.5x makespan slowdown went unflagged — the gate \
       is toothless\n";
    exit 1);
  Util.row "  selftest passed: synthetic slowdown flagged (%d failures)\n"
    failures

(* ------------------------------------------------------------------ *)
(* Baseline regeneration: run every artifact-producing suite, then copy
   the fresh BENCH_*.json over bench/baselines/. This is the one
   sanctioned way to move the regression gate after an intentional
   planner/simulator change — the diff of the copied baselines is what
   the reviewer sees. *)

let copy_file src dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc s;
  close_out oc

let regen_baselines () =
  Util.heading "Regen baselines: live run -> %s" baseline_dir;
  plan_cache_suite ();
  parallel_plan_suite ();
  overlap_suite ();
  replay_suite ();
  kernels_suite ();
  failover_suite ();
  cluster_suite ();
  analyze_suite ();
  if not (Sys.file_exists baseline_dir) then Sys.mkdir baseline_dir 0o755;
  Util.heading "Regen baselines: copying fresh artifacts";
  List.iter
    (fun suite ->
      let src = bench_file suite in
      if Sys.file_exists src then begin
        copy_file src (Filename.concat baseline_dir src);
        Util.row "  %s -> %s/\n" src baseline_dir
      end)
    [
      "plan_cache"; "parallel_plan"; "overlap"; "replay"; "kernels";
      "failover"; "cluster"; "analyze";
    ]

(* ------------------------------------------------------------------ *)

(* Abort insurance: each gated suite leaves at least a stub BENCH_*.json
   behind if it dies on an uncaught exception before its own write (the
   in-suite gates already write first, then exit 1). *)
let plan_cache_suite =
  let f = plan_cache_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_plan_cache.json" ~suite:"plan_cache" f

let parallel_plan_suite =
  let f = parallel_plan_suite in
  fun () ->
    Util.guard_artifact ~file:"BENCH_parallel_plan.json" ~suite:"parallel_plan" f

let overlap_suite =
  let f = overlap_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_overlap.json" ~suite:"overlap" f

let replay_suite =
  let f = replay_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_replay.json" ~suite:"replay" f

let kernels_suite =
  let f = kernels_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_kernels.json" ~suite:"kernels" f

let failover_suite =
  let f = failover_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_failover.json" ~suite:"failover" f

let cluster_suite =
  let f = cluster_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_cluster.json" ~suite:"cluster" f

let analyze_suite =
  let f = analyze_suite in
  fun () -> Util.guard_artifact ~file:"BENCH_analyze.json" ~suite:"analyze" f

let tournament_suite =
  let f = tournament_suite in
  fun () ->
    Util.guard_artifact ~file:"BENCH_tournament.json" ~suite:"tournament" f

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      Figures.all_figures ();
      plan_cache_suite ();
      parallel_plan_suite ();
      overlap_suite ();
      replay_suite ();
      kernels_suite ();
      failover_suite ();
      cluster_suite ();
      analyze_suite ();
      tournament_suite ();
      bechamel_suite ();
      print_newline ()
  | _ :: args ->
      List.iter
        (fun arg ->
          match arg with
          | "list" ->
              List.iter (fun (name, _) -> print_endline name) Figures.registry;
              print_endline "plan-cache";
              print_endline "parallel-plan";
              print_endline "overlap";
              print_endline "replay";
              print_endline "kernels";
              print_endline "failover";
              print_endline "cluster";
              print_endline "analyze";
              print_endline "tournament";
              print_endline "regress";
              print_endline "regress-selftest";
              print_endline "regen-baselines";
              print_endline "bechamel"
          | "all" ->
              Figures.all_figures ();
              plan_cache_suite ();
              parallel_plan_suite ();
              overlap_suite ();
              replay_suite ();
              kernels_suite ();
              failover_suite ();
              cluster_suite ();
              analyze_suite ();
              tournament_suite ();
              bechamel_suite ()
          | "plan-cache" -> plan_cache_suite ()
          | "parallel-plan" -> parallel_plan_suite ()
          | "overlap" -> overlap_suite ()
          | "replay" -> replay_suite ()
          | "kernels" -> kernels_suite ()
          | "failover" -> failover_suite ()
          | "cluster" -> cluster_suite ()
          | "analyze" -> analyze_suite ()
          | "tournament" -> tournament_suite ()
          | "regress" -> regress_suite ()
          | "regress-selftest" -> regress_selftest ()
          | "regen-baselines" -> regen_baselines ()
          | "bechamel" -> bechamel_suite ()
          | name -> (
              match List.assoc_opt name Figures.registry with
              | Some f -> f ()
              | None ->
                  Printf.eprintf
                    "unknown target %S (use `list` to enumerate)\n" name;
                  exit 1))
        args
  | [] -> assert false
